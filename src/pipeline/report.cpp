#include "pipeline/report.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace gesmc {

// ------------------------------------------------------------- JsonWriter

void JsonWriter::comma_and_indent() {
    if (pending_key_) {
        pending_key_ = false;
        return; // value follows its key on the same line
    }
    if (!first_in_scope_.empty()) {
        if (!first_in_scope_.back()) os_ << ',';
        first_in_scope_.back() = false;
        os_ << '\n';
        for (std::size_t i = 0; i < first_in_scope_.size(); ++i) os_ << "  ";
    }
}

JsonWriter& JsonWriter::begin_object() {
    comma_and_indent();
    os_ << '{';
    first_in_scope_.push_back(true);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    GESMC_CHECK(!first_in_scope_.empty(), "JsonWriter: unbalanced end_object");
    const bool empty = first_in_scope_.back();
    first_in_scope_.pop_back();
    if (!empty) {
        os_ << '\n';
        for (std::size_t i = 0; i < first_in_scope_.size(); ++i) os_ << "  ";
    }
    os_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    comma_and_indent();
    os_ << '[';
    first_in_scope_.push_back(true);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    GESMC_CHECK(!first_in_scope_.empty(), "JsonWriter: unbalanced end_array");
    const bool empty = first_in_scope_.back();
    first_in_scope_.pop_back();
    if (!empty) {
        os_ << '\n';
        for (std::size_t i = 0; i < first_in_scope_.size(); ++i) os_ << "  ";
    }
    os_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
    comma_and_indent();
    write_escaped(name);
    os_ << ": ";
    pending_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
    comma_and_indent();
    write_escaped(v);
    return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
    comma_and_indent();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    comma_and_indent();
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        os_ << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    comma_and_indent();
    os_ << (v ? "true" : "false");
    return *this;
}

void JsonWriter::write_escaped(const std::string& s) { write_json_escaped(os_, s); }

void write_json_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

// -------------------------------------------------------------- RunReport

double RunReport::switches_per_second() const noexcept {
    std::uint64_t attempted = 0;
    for (const ReplicateReport& r : replicates) attempted += r.stats.attempted;
    // Throughput against wall clock, not summed replicate seconds: under the
    // replicate-parallel policy the replicates overlap.
    if (total_seconds <= 0) return 0;
    return static_cast<double>(attempted) / total_seconds;
}

namespace {

void write_stats(JsonWriter& w, const ChainStats& stats) {
    w.begin_object();
    w.kv("supersteps", stats.supersteps);
    w.kv("attempted", stats.attempted);
    w.kv("accepted", stats.accepted);
    w.kv("rejected_loop", stats.rejected_loop);
    w.kv("rejected_edge", stats.rejected_edge);
    w.kv("rounds_total", stats.rounds_total);
    w.kv("rounds_max", stats.rounds_max);
    w.kv("first_round_seconds", stats.first_round_seconds);
    w.kv("later_rounds_seconds", stats.later_rounds_seconds);
    w.end_object();
}

} // namespace

void write_replicate_json(JsonWriter& w, const ReplicateReport& r) {
    w.begin_object();
    w.kv("index", r.index);
    w.kv("seed", r.seed);
    w.kv("seconds", r.seconds);
    if (r.resumed_supersteps > 0) w.kv("resumed_supersteps", r.resumed_supersteps);
    if (!r.output_path.empty()) w.kv("output", r.output_path);
    if (!r.error.empty()) w.kv("error", r.error);
    if (r.has_adaptive) {
        w.kv("realized_supersteps", r.realized_supersteps);
        w.kv("stop_reason", r.stop_reason);
        w.key("mixing");
        w.begin_object();
        w.kv("ess", r.ess);
        w.kv("act_tau", r.act_tau);
        w.kv("non_independent", r.non_independent);
        w.end_object();
    }
    w.key("stats");
    write_stats(w, r.stats);
    if (r.has_metrics) {
        w.key("metrics");
        w.begin_object();
        w.kv("triangles", r.triangles);
        w.kv("global_clustering", r.global_clustering);
        w.kv("assortativity", r.assortativity);
        w.kv("components", r.components);
        w.end_object();
    }
    w.end_object();
}

void write_json_report(std::ostream& os, const RunReport& report) {
    JsonWriter w(os);
    w.begin_object();

    w.key("config");
    w.begin_object();
    w.kv("input", report.config.input_path);
    w.kv("input_kind", to_string(report.config.input_kind));
    if (report.config.input_kind == InputKind::kGenerator) {
        // Echo every generator parameter: the config block must suffice to
        // re-materialize the identical input graph.
        w.kv("generator", report.config.generator);
        if (report.config.generator == "powerlaw") {
            w.kv("gen_n", report.config.gen_n);
            w.kv("gen_gamma", report.config.gen_gamma);
        } else if (report.config.generator == "gnp") {
            w.kv("gen_n", report.config.gen_n);
            w.kv("gen_m", report.config.gen_m);
        } else if (report.config.generator == "grid") {
            w.kv("gen_rows", report.config.gen_rows);
            w.kv("gen_cols", report.config.gen_cols);
        } else if (report.config.generator == "regular") {
            w.kv("gen_n", report.config.gen_n);
            w.kv("gen_degree", static_cast<std::uint64_t>(report.config.gen_degree));
        }
    }
    if (report.config.input_kind == InputKind::kDegreeSequence) {
        w.kv("init", to_string(report.config.init));
    }
    w.kv("algorithm", report.config.algorithm);
    if (report.config.adaptive) {
        w.kv("supersteps", "adaptive");
        w.kv("ess_target", report.config.ess_target);
        w.kv("mixing_tau", report.config.mixing_tau);
        w.kv("min_supersteps", report.config.min_supersteps);
        w.kv("max_supersteps", report.config.max_supersteps);
        w.kv("check_every", report.config.check_every);
    } else {
        w.kv("supersteps", report.config.supersteps);
    }
    w.kv("pl", report.config.pl);
    w.kv("prefetch", report.config.prefetch);
    w.kv("small_cutoff", report.config.small_graph_cutoff);
    w.kv("replicates", report.config.replicates);
    w.kv("seed", report.config.seed);
    w.kv("requested_threads", report.config.threads);
    w.kv("policy", to_string(report.config.policy));
    if (report.config.chain_threads > 0) {
        w.kv("chain_threads", static_cast<std::uint64_t>(report.config.chain_threads));
    }
    if (report.config.max_concurrent > 0) {
        w.kv("max_concurrent", static_cast<std::uint64_t>(report.config.max_concurrent));
    }
    w.kv("output_dir", report.config.output_dir);
    w.kv("output_prefix", report.config.output_prefix);
    w.kv("output_format", to_string(report.config.output_format));
    w.kv("checkpoint_every", report.config.checkpoint_every);
    if (!report.config.resume_from.empty()) w.kv("resume_from", report.config.resume_from);
    if (report.config.keep_checkpoints) w.kv("keep_checkpoints", true);
    w.kv("metrics", report.config.metrics);
    w.kv("verify", report.config.verify);
    w.end_object();

    w.kv("chain", report.chain_name);
    w.kv("resolved_policy", to_string(report.resolved_policy));
    w.kv("threads", report.threads);
    // The (K, T) point the schedule resolved to: K = resolved_max_concurrent
    // replicates at once, T = resolved_chain_threads threads each.
    w.kv("resolved_chain_threads", static_cast<std::uint64_t>(report.chain_threads));
    w.kv("resolved_max_concurrent", static_cast<std::uint64_t>(report.max_concurrent));
    w.kv("resolved_edge_set_backend", to_string(report.resolved_edge_set_backend));

    w.key("input_graph");
    w.begin_object();
    w.kv("nodes", report.input_nodes);
    w.kv("edges", report.input_edges);
    w.kv("max_degree", static_cast<std::uint64_t>(report.input_max_degree));
    w.kv("p2", report.input_p2);
    w.end_object();

    w.kv("init_seconds", report.init_seconds);
    w.kv("total_seconds", report.total_seconds);
    w.kv("switches_per_second", report.switches_per_second());

    w.key("replicates");
    w.begin_array();
    for (const ReplicateReport& r : report.replicates) {
        write_replicate_json(w, r);
    }
    w.end_array();

    // Process-wide observability counters ride along when enabled — the
    // same snapshot `gesmc_sample --metrics-out` writes standalone.
    if (obs::metrics_enabled()) {
        w.key("obs_metrics");
        obs::write_metrics_json(w, obs::MetricsRegistry::instance().snapshot());
    }

    w.end_object();
    os << '\n';
}

void write_json_report_file(const std::string& path, const RunReport& report) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open report for writing: " + path);
    write_json_report(os, report);
}

} // namespace gesmc
