/// \file config.hpp
/// \brief Declarative configuration for the batch sampling pipeline.
///
/// A pipeline run is described by a flat "key = value" config file ('#'/'%'
/// comments, blank lines ignored).  The same key/value vocabulary is reused
/// by the gesmc_sample CLI for overrides, so a run is always expressible as
/// a single reproducible artifact:
///
///     # null-model batch: 64 randomized replicates of a protein network
///     input        = graphs/ppi.txt
///     algorithm    = par-global-es
///     supersteps   = 30
///     replicates   = 64
///     seed         = 42
///     threads      = 8
///     policy       = auto
///     output-dir   = out/ppi
///     output-format= binary
///     report       = out/ppi/report.json
///
/// Every key has a sane default; see the struct fields below.
#pragma once

#include "hashing/edge_set_backend.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gesmc {

/// What the `input` path (or generator) provides.
enum class InputKind {
    kEdgeList,        ///< text or GESB binary edge list (sniffed)
    kDegreeSequence,  ///< degree file; realized via `init`
    kGenerator,       ///< built-in synthetic generator (`generator` key)
};

/// How an initial simple graph is materialized from a degree sequence.
enum class InitMethod {
    kHavelHakimi,         ///< deterministic realization (paper §6, SynPld)
    kConfigurationModel,  ///< random stub pairing + degree-preserving repair
};

/// How replicates share the machine (the pipeline's parallelism knob).
/// The run's `threads` value is a machine-level *budget* of P threads;
/// replicates lease sub-pools of width T out of it, so K = ⌊P/T⌋ chains
/// compute at once (docs/scheduling.md).
enum class SchedulePolicy {
    kAuto,        ///< derive (K, T) from R, P and a pinned chain-threads
    kReplicates,  ///< T = 1: replicates run concurrently, chains single-threaded
    kIntraChain,  ///< K = 1: replicates run one at a time on the whole budget
    kHybrid,      ///< K×T: concurrent replicates with intra-chain parallelism
};

/// Format of the per-replicate output graphs.
enum class OutputFormat {
    kText,    ///< "u v" lines (io.hpp text format)
    kBinary,  ///< compact GESB binary format
};

struct PipelineConfig {
    // ------------------------------------------------------------- input
    /// One input path — or, for a corpus run, a whitespace-separated list
    /// of paths.  A path containing spaces must be double-quoted
    /// (`input = "my graph.txt"`) so it stays a single entry; see
    /// split_input_list.                                       key: input
    std::string input_path;
    InputKind input_kind = InputKind::kEdgeList; ///< key: input-kind
                                                 ///<   (edges|degrees|generator)
    InitMethod init = InitMethod::kHavelHakimi;  ///< key: init
                                                 ///<   (havel-hakimi|configuration-model)
    std::string generator;                       ///< key: generator
                                                 ///<   (powerlaw|gnp|grid|regular)
    std::uint64_t gen_n = 10000;                 ///< key: gen-n
    std::uint64_t gen_m = 50000;                 ///< key: gen-m (gnp)
    double gen_gamma = 2.2;                      ///< key: gen-gamma (powerlaw)
    std::uint64_t gen_rows = 100;                ///< key: gen-rows (grid)
    std::uint64_t gen_cols = 100;                ///< key: gen-cols (grid)
    std::uint32_t gen_degree = 8;                ///< key: gen-degree (regular)

    // ------------------------------------------------------------- corpus
    // A config names *one* input source.  Beyond the single-graph `input`,
    // three corpus sources turn the run into a sharded corpus run — one
    // (namespaced) single-graph run per input graph, scheduled jointly over
    // the thread budget and merged into one corpus summary
    // (pipeline/corpus.hpp, docs/corpus.md).  Naming more than one source
    // is rejected at validation.

    /// Shell-style pattern (`*`/`?` in the filename component) matched
    /// against a directory of edge-list files; matches are taken in sorted
    /// order.                                       key: input-glob
    std::string input_glob;

    /// Manifest file: one input per line (`path [:: name]`, '#'/'%'
    /// comments at line start or after whitespace), relative paths
    /// resolving against the manifest's directory.
    ///                                              key: corpus-manifest
    std::string corpus_manifest;

    /// Synthetic corpus spec backed by src/gen/corpus — `test`, `bench`, or
    /// `powerlaw n=<N> gamma=<G> count=<C>` / `gnp n=<N> m=<M> count=<C>`
    /// (members are materialized under <output-dir>/corpus-inputs/).
    ///                                              key: corpus
    std::string corpus_spec;

    // ------------------------------------------------------------- chain
    std::string algorithm = "par-global-es"; ///< key: algorithm (chain name)

    /// Superstep budget per replicate.  `supersteps = adaptive` switches to
    /// the convergence-aware mode below instead of a fixed count (the
    /// numeric value is then unused; max-supersteps is the budget).
    ///                                              key: supersteps
    std::uint64_t supersteps = 20;

    // ----------------------------------------------------------- adaptive
    // Convergence-aware stopping (docs/adaptive.md): each replicate runs
    // until a streaming ESS / G2-BIC mixing test says it is mixed — or
    // until max-supersteps.  Verdicts are deterministic functions of the
    // superstep stream, so adaptive runs stay byte-reproducible and
    // resume-safe.

    bool adaptive = false;          ///< key: supersteps = adaptive
    double ess_target = 32.0;       ///< key: ess-target
    double mixing_tau = 0.2;        ///< key: mixing-tau
    std::uint64_t min_supersteps = 8;   ///< key: min-supersteps
    std::uint64_t max_supersteps = 200; ///< key: max-supersteps
    std::uint64_t check_every = 2;      ///< key: check-every

    double pl = 1e-3;                        ///< key: pl
    bool prefetch = true;                    ///< key: prefetch (true|false)
    std::uint64_t small_graph_cutoff = 0;    ///< key: small-cutoff

    /// ConcurrentEdgeSet implementation for the parallel chains; sequential
    /// chains ignore it.  Exact chains are byte-identical across backends
    /// (docs/hashing.md).           key: edge-set-backend (locked|lockfree)
    EdgeSetBackend edge_set_backend = EdgeSetBackend::kLocked;

    // ------------------------------------------------------------- batch
    std::uint64_t replicates = 8;                       ///< key: replicates
    std::uint64_t seed = 1;                             ///< key: seed
    unsigned threads = 0;                               ///< key: threads (0 = hw)
                                                        ///<   — the thread *budget* P
    SchedulePolicy policy = SchedulePolicy::kAuto;      ///< key: policy
                                                        ///<   (auto|replicates|intra-chain|hybrid)

    /// Threads leased to each replicate's chain (T).  0 derives T from the
    /// policy: 1 under replicates, the whole budget under intra-chain, and
    /// ⌊P / min(R, P)⌋ under hybrid.  A pinned value makes `auto` resolve
    /// budget-aware: K = ⌊P/T⌋ replicates run concurrently.
    ///                                                 key: chain-threads
    unsigned chain_threads = 0;

    /// Cap on replicates computing at once (K).  0 = as many as the budget
    /// admits (⌊P/T⌋).  The budget is never oversubscribed either way.
    ///                                                 key: max-concurrent
    unsigned max_concurrent = 0;

    // ------------------------------------------------- checkpoint / resume
    /// Persist each replicate's ChainState to
    /// <output-dir>/checkpoints/<prefix>_<index>.gesc every this many
    /// supersteps (and once more when the replicate finishes).  0 = off.
    /// Requires output-dir.                           key: checkpoint-every
    std::uint64_t checkpoint_every = 0;

    /// Directory of a previous (interrupted) run whose checkpoints/ should
    /// seed this one: finished replicates are skipped (their outputs are
    /// re-emitted from the final checkpoint), in-flight ones resume from
    /// their (seed, counter) pair, missing ones start from scratch.  The
    /// rest of the config must match the interrupted run for the outputs
    /// to be byte-identical.  "" = fresh run.              key: resume-from
    std::string resume_from;

    /// Retain <output-dir>/checkpoints/ after a fully successful run.  By
    /// default the run deletes its own .gesc files once every replicate
    /// finished without error (they only exist to survive interruption, and
    /// stale ones accumulate); an interrupted or failed run always keeps
    /// them so resume-from works.               key: keep-checkpoints
    bool keep_checkpoints = false;

    // ------------------------------------------------------------ output
    std::string output_dir;                        ///< key: output-dir ("" = none)
    std::string output_prefix = "replicate";       ///< key: output-prefix
    OutputFormat output_format = OutputFormat::kText; ///< key: output-format
                                                      ///<   (text|binary)
    std::string report_path;                       ///< key: report ("" = stdout only)
    bool metrics = true;                           ///< key: metrics (true|false)
    bool verify = true;                            ///< key: verify (true|false)
};

[[nodiscard]] std::string to_string(InputKind kind);
[[nodiscard]] std::string to_string(InitMethod method);
[[nodiscard]] std::string to_string(SchedulePolicy policy);
[[nodiscard]] std::string to_string(OutputFormat format);

/// Applies one "key = value" entry; throws Error on unknown key/bad value.
void apply_config_entry(PipelineConfig& config, const std::string& key,
                        const std::string& value);

/// Parses a config stream/file on top of the defaults.  Errors from
/// malformed lines or bad entries carry the offending line number (and the
/// key, via apply_config_entry's messages).
PipelineConfig read_pipeline_config(std::istream& is);
PipelineConfig read_pipeline_config_file(const std::string& path);

/// Parses a config document held in memory — the service path: submitted
/// jobs carry their config text verbatim inside a control frame, never as a
/// file on the daemon's disk.
PipelineConfig read_pipeline_config_string(const std::string& text);

/// Renders `config` back to "key = value" text that read_pipeline_config
/// parses to an equivalent config — how corpus shards travel to the
/// sampling service as plain config documents.  Only non-default entries
/// are emitted.
[[nodiscard]] std::string pipeline_config_to_string(const PipelineConfig& config);

/// Splits an `input` value into its path entries: whitespace-separated
/// tokens, where a double-quoted token may contain spaces (the quotes are
/// stripped).  Throws on an unterminated quote.
[[nodiscard]] std::vector<std::string> split_input_list(const std::string& value);

/// The single path of a one-graph config's `input` (quotes stripped);
/// empty for an empty input.  Throws if `input` in fact lists several
/// paths — callers reach here only after validate().
[[nodiscard]] std::string single_input_path(const PipelineConfig& config);

/// True iff the config names a corpus of inputs rather than a single graph:
/// any of input-glob / corpus-manifest / corpus is set, or `input` lists
/// more than one entry (see split_input_list).  Corpus configs are expanded
/// by plan_corpus (pipeline/corpus.hpp); run_pipeline and service
/// submission reject them.
[[nodiscard]] bool is_corpus_config(const PipelineConfig& config);

/// Throws unless at most one input source is named: contradictory
/// combinations (e.g. `input` together with `corpus-manifest`) are config
/// errors regardless of how the config will be run.
void validate_input_sources(const PipelineConfig& config);

/// Validates cross-field constraints (input present, counts positive, ...)
/// for a *single-graph* run.  Throws Error with an actionable message;
/// corpus configs are rejected here (expand them with plan_corpus).
void validate(const PipelineConfig& config);

} // namespace gesmc
