/// \file shared_executor.hpp
/// \brief Machine-wide replicate execution shared by concurrent runs.
///
/// SharedExecutor is a ReplicateExecutor over one ThreadBudget of P threads
/// that multiplexes the replicates of *many concurrent run() calls* — the
/// sampling service's jobs, or the graphs of one corpus run — while
/// preserving each run's resolved (K, T) schedule:
///
///   * Every run's replicates become tasks of the run's resolved chain
///     width T; one team of P task workers pops tasks *round-robin across
///     runs* (one replicate from each active run in turn, so a small run is
///     never FIFO-starved behind a thousand-replicate one) and leases a
///     width-T sub-pool out of the budget before computing.
///   * The width-counting budget is the admission gate: a T=4 chain of one
///     run and four T=1 replicates of other runs compute simultaneously,
///     and the total leased width never exceeds P.
///   * A K = 1 run (intra-chain) runs its replicates on its own calling
///     thread, leasing per replicate so other runs interleave between
///     chains; the ChainConfig::shared_pool contract holds because every
///     lease is an exclusive, disjoint worker team.
///
/// This class started life inside the service's JobManager; the corpus
/// layer (pipeline/corpus.hpp) shares it now, so it lives with the
/// scheduler seam it implements.
#pragma once

#include "check/checked_mutex.hpp"
#include "parallel/pool_lease.hpp"
#include "pipeline/scheduler.hpp"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <thread>
#include <vector>

namespace gesmc {

/// Point-in-time load snapshot of a SharedExecutor — the numbers behind
/// the daemon's `metrics` frame (queue depth, lease occupancy).  Racy by
/// nature: a consistent-enough view, not a fence.
struct ExecutorStats {
    unsigned threads = 0;                  ///< budget width P
    unsigned leased = 0;                   ///< width currently leased out
    std::uint64_t lease_waiters = 0;       ///< acquire() calls queued
    std::uint64_t active_runs = 0;         ///< run() calls in flight
    std::uint64_t pending_replicates = 0;  ///< queued, not yet started
    std::uint64_t inflight_replicates = 0; ///< replicates computing now
};

/// Machine-wide replicate executor shared by all concurrently running jobs.
class SharedExecutor final : public ReplicateExecutor {
public:
    /// `threads` = 0 resolves to hardware concurrency.
    explicit SharedExecutor(unsigned threads);
    ~SharedExecutor() override;

    SharedExecutor(const SharedExecutor&) = delete;
    SharedExecutor& operator=(const SharedExecutor&) = delete;

    /// Budget width P.
    [[nodiscard]] unsigned threads() const noexcept override;

    [[nodiscard]] ExecutorStats stats() const;

    void run(std::uint64_t replicates, const ScheduleRequest& request,
             const std::function<void(const ReplicateSlot&)>& fn) override;

private:
    /// One concurrent run() call's replicates: the unit the task workers
    /// round-robin over.  Lives in active_ while it still has pending
    /// indices; `inflight` enforces the run's own K cap on top of the
    /// budget's machine-wide one.
    /// All mutable RunQueue fields are guarded by the *executor's* mutex_
    /// (not expressible as GUARDED_BY from a nested struct — the runtime
    /// rank detector and TSan still cover them).
    struct RunQueue {
        std::deque<std::uint64_t> pending;  ///< replicate indices not yet started
        unsigned width = 1;                 ///< T: lease width per replicate
        unsigned max_inflight = 1;          ///< K: the run's concurrency cap
        unsigned inflight = 0;              ///< replicates currently computing
        std::uint64_t remaining = 0;        ///< not yet *completed* replicates
        const std::function<void(const ReplicateSlot&)>* fn = nullptr;
        CheckedCondVar done_cv;             ///< signalled at remaining == 0
    };

    void worker_loop();
    /// Pops the next round-robin task whose run is under its K cap;
    /// null when nothing is currently runnable.
    std::shared_ptr<RunQueue> pick_task_locked(std::uint64_t& replicate)
        GESMC_REQUIRES(mutex_);

    ThreadBudget budget_;  ///< the width-counting admission gate

    /// Load tracking for stats() — atomics because the K = 1 fast path and
    /// run() entry/exit update them without holding mutex_.
    std::atomic<std::uint64_t> active_runs_{0};
    std::atomic<std::uint64_t> inflight_replicates_{0};

    mutable CheckedMutex mutex_{LockRank::kSharedExecutor, "SharedExecutor"};
    CheckedCondVar work_cv_;
    /// Round-robin ring of runs with pending replicates: workers pop from
    /// the front and rotate the run to the back.
    std::list<std::shared_ptr<RunQueue>> active_ GESMC_GUARDED_BY(mutex_);
    bool stopping_ GESMC_GUARDED_BY(mutex_) = false;
    std::vector<std::thread> workers_;
};

} // namespace gesmc
