#include "pipeline/config.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace gesmc {

namespace {

std::string trim(const std::string& s) {
    const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto begin = s.begin();
    while (begin != s.end() && is_space(*begin)) ++begin;
    auto end = s.end();
    while (end != begin && is_space(*(end - 1))) --end;
    return std::string(begin, end);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
    std::istringstream is(value);
    std::uint64_t v = 0;
    // istream >> uint64_t silently wraps negative input; reject it up front.
    GESMC_CHECK(value.find('-') == std::string::npos &&
                    static_cast<bool>(is >> v) && is.eof(),
                "config key \"" + key + "\": expected a non-negative integer, got \"" +
                    value + "\"");
    return v;
}

double parse_double(const std::string& key, const std::string& value) {
    std::istringstream is(value);
    double v = 0;
    GESMC_CHECK(static_cast<bool>(is >> v) && is.eof(),
                "config key \"" + key + "\": expected a number, got \"" + value + "\"");
    return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
    if (value == "true" || value == "1" || value == "yes" || value == "on") return true;
    if (value == "false" || value == "0" || value == "no" || value == "off") return false;
    throw Error("config key \"" + key + "\": expected true/false, got \"" + value + "\"");
}

} // namespace

std::string to_string(InputKind kind) {
    switch (kind) {
    case InputKind::kEdgeList:
        return "edges";
    case InputKind::kDegreeSequence:
        return "degrees";
    case InputKind::kGenerator:
        return "generator";
    }
    return "unknown";
}

std::string to_string(InitMethod method) {
    switch (method) {
    case InitMethod::kHavelHakimi:
        return "havel-hakimi";
    case InitMethod::kConfigurationModel:
        return "configuration-model";
    }
    return "unknown";
}

std::string to_string(SchedulePolicy policy) {
    switch (policy) {
    case SchedulePolicy::kAuto:
        return "auto";
    case SchedulePolicy::kReplicates:
        return "replicates";
    case SchedulePolicy::kIntraChain:
        return "intra-chain";
    case SchedulePolicy::kHybrid:
        return "hybrid";
    }
    return "unknown";
}

std::string to_string(OutputFormat format) {
    switch (format) {
    case OutputFormat::kText:
        return "text";
    case OutputFormat::kBinary:
        return "binary";
    }
    return "unknown";
}

void apply_config_entry(PipelineConfig& config, const std::string& raw_key,
                        const std::string& raw_value) {
    const std::string key = trim(raw_key);
    const std::string value = trim(raw_value);
    if (key == "input") {
        config.input_path = value;
    } else if (key == "input-kind") {
        if (value == "edges") config.input_kind = InputKind::kEdgeList;
        else if (value == "degrees") config.input_kind = InputKind::kDegreeSequence;
        else if (value == "generator") config.input_kind = InputKind::kGenerator;
        else throw Error("config key \"input-kind\": expected edges|degrees|generator, got \"" +
                         value + "\"");
    } else if (key == "init") {
        if (value == "havel-hakimi") config.init = InitMethod::kHavelHakimi;
        else if (value == "configuration-model")
            config.init = InitMethod::kConfigurationModel;
        else throw Error(
            "config key \"init\": expected havel-hakimi|configuration-model, got \"" +
            value + "\"");
    } else if (key == "generator") {
        config.generator = value;
    } else if (key == "gen-n") {
        config.gen_n = parse_u64(key, value);
    } else if (key == "gen-m") {
        config.gen_m = parse_u64(key, value);
    } else if (key == "gen-gamma") {
        config.gen_gamma = parse_double(key, value);
    } else if (key == "gen-rows") {
        config.gen_rows = parse_u64(key, value);
    } else if (key == "gen-cols") {
        config.gen_cols = parse_u64(key, value);
    } else if (key == "gen-degree") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"gen-degree\": value too large");
        config.gen_degree = static_cast<std::uint32_t>(v);
    } else if (key == "algorithm") {
        config.algorithm = value;
    } else if (key == "supersteps") {
        config.supersteps = parse_u64(key, value);
    } else if (key == "pl") {
        config.pl = parse_double(key, value);
    } else if (key == "prefetch") {
        config.prefetch = parse_bool(key, value);
    } else if (key == "small-cutoff") {
        config.small_graph_cutoff = parse_u64(key, value);
    } else if (key == "replicates") {
        config.replicates = parse_u64(key, value);
    } else if (key == "seed") {
        config.seed = parse_u64(key, value);
    } else if (key == "threads") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"threads\": value too large");
        config.threads = static_cast<unsigned>(v);
    } else if (key == "policy") {
        if (value == "auto") config.policy = SchedulePolicy::kAuto;
        else if (value == "replicates") config.policy = SchedulePolicy::kReplicates;
        else if (value == "intra-chain") config.policy = SchedulePolicy::kIntraChain;
        else if (value == "hybrid") config.policy = SchedulePolicy::kHybrid;
        else throw Error(
            "config key \"policy\": expected auto|replicates|intra-chain|hybrid, got \"" +
            value + "\"");
    } else if (key == "chain-threads") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"chain-threads\": value too large");
        config.chain_threads = static_cast<unsigned>(v);
    } else if (key == "max-concurrent") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"max-concurrent\": value too large");
        config.max_concurrent = static_cast<unsigned>(v);
    } else if (key == "checkpoint-every") {
        config.checkpoint_every = parse_u64(key, value);
    } else if (key == "resume-from") {
        config.resume_from = value;
    } else if (key == "keep-checkpoints") {
        config.keep_checkpoints = parse_bool(key, value);
    } else if (key == "output-dir") {
        config.output_dir = value;
    } else if (key == "output-prefix") {
        config.output_prefix = value;
    } else if (key == "output-format") {
        if (value == "text") config.output_format = OutputFormat::kText;
        else if (value == "binary") config.output_format = OutputFormat::kBinary;
        else throw Error("config key \"output-format\": expected text|binary, got \"" +
                         value + "\"");
    } else if (key == "report") {
        config.report_path = value;
    } else if (key == "metrics") {
        config.metrics = parse_bool(key, value);
    } else if (key == "verify") {
        config.verify = parse_bool(key, value);
    } else {
        throw Error("unknown config key: \"" + key + "\"");
    }
}

PipelineConfig read_pipeline_config(std::istream& is) {
    PipelineConfig config;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#' || stripped[0] == '%') continue;
        const std::size_t eq = stripped.find('=');
        GESMC_CHECK(eq != std::string::npos,
                    "config line " + std::to_string(line_no) + ": expected \"key = value\", got \"" +
                        stripped + "\"");
        apply_config_entry(config, stripped.substr(0, eq), stripped.substr(eq + 1));
    }
    return config;
}

PipelineConfig read_pipeline_config_file(const std::string& path) {
    std::ifstream is(path);
    GESMC_CHECK(is.good(), "cannot open config: " + path);
    return read_pipeline_config(is);
}

PipelineConfig read_pipeline_config_string(const std::string& text) {
    std::istringstream is(text);
    return read_pipeline_config(is);
}

void validate(const PipelineConfig& config) {
    GESMC_CHECK(config.replicates > 0, "replicates must be >= 1");
    GESMC_CHECK(config.supersteps > 0, "supersteps must be >= 1");
    GESMC_CHECK(config.pl > 0 && config.pl < 1, "pl must be in (0, 1)");
    if (config.input_kind == InputKind::kGenerator) {
        GESMC_CHECK(!config.generator.empty(),
                    "input-kind = generator requires the \"generator\" key");
        GESMC_CHECK(config.generator == "powerlaw" || config.generator == "gnp" ||
                        config.generator == "grid" || config.generator == "regular",
                    "generator must be powerlaw|gnp|grid|regular, got \"" +
                        config.generator + "\"");
    } else {
        GESMC_CHECK(!config.input_path.empty(),
                    "an \"input\" path is required (or set input-kind = generator)");
    }
    GESMC_CHECK(config.checkpoint_every == 0 || !config.output_dir.empty(),
                "checkpoint-every requires an output-dir to hold the checkpoints");
    // policy = replicates *means* T = 1; silently dropping a pinned wider
    // chain-threads would run single-threaded chains behind the user's
    // back.  (auto and hybrid honor the pin; intra-chain uses it as the
    // one chain's width.)
    GESMC_CHECK(config.policy != SchedulePolicy::kReplicates || config.chain_threads <= 1,
                "policy = replicates runs single-threaded chains; use policy = "
                "hybrid (or auto) to combine chain-threads = " +
                    std::to_string(config.chain_threads) +
                    " with concurrent replicates");
    // Mirror image: intra-chain *means* K = 1, so a wider max-concurrent
    // pin would be silently ignored.
    GESMC_CHECK(config.policy != SchedulePolicy::kIntraChain || config.max_concurrent <= 1,
                "policy = intra-chain runs one replicate at a time; use policy = "
                "hybrid (or auto) to combine max-concurrent = " +
                    std::to_string(config.max_concurrent) +
                    " with intra-chain parallelism");
}

} // namespace gesmc
