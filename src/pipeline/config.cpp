#include "pipeline/config.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

namespace gesmc {

namespace {

std::string trim(const std::string& s) {
    const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto begin = s.begin();
    while (begin != s.end() && is_space(*begin)) ++begin;
    auto end = s.end();
    while (end != begin && is_space(*(end - 1))) --end;
    return std::string(begin, end);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
    std::istringstream is(value);
    std::uint64_t v = 0;
    // istream >> uint64_t silently wraps negative input; reject it up front.
    GESMC_CHECK(value.find('-') == std::string::npos &&
                    static_cast<bool>(is >> v) && is.eof(),
                "config key \"" + key + "\": expected a non-negative integer, got \"" +
                    value + "\"");
    return v;
}

double parse_double(const std::string& key, const std::string& value) {
    std::istringstream is(value);
    double v = 0;
    GESMC_CHECK(static_cast<bool>(is >> v) && is.eof(),
                "config key \"" + key + "\": expected a number, got \"" + value + "\"");
    return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
    if (value == "true" || value == "1" || value == "yes" || value == "on") return true;
    if (value == "false" || value == "0" || value == "no" || value == "off") return false;
    throw Error("config key \"" + key + "\": expected true/false, got \"" + value + "\"");
}

} // namespace

std::string to_string(InputKind kind) {
    switch (kind) {
    case InputKind::kEdgeList:
        return "edges";
    case InputKind::kDegreeSequence:
        return "degrees";
    case InputKind::kGenerator:
        return "generator";
    }
    return "unknown";
}

std::string to_string(InitMethod method) {
    switch (method) {
    case InitMethod::kHavelHakimi:
        return "havel-hakimi";
    case InitMethod::kConfigurationModel:
        return "configuration-model";
    }
    return "unknown";
}

std::string to_string(SchedulePolicy policy) {
    switch (policy) {
    case SchedulePolicy::kAuto:
        return "auto";
    case SchedulePolicy::kReplicates:
        return "replicates";
    case SchedulePolicy::kIntraChain:
        return "intra-chain";
    case SchedulePolicy::kHybrid:
        return "hybrid";
    }
    return "unknown";
}

std::string to_string(OutputFormat format) {
    switch (format) {
    case OutputFormat::kText:
        return "text";
    case OutputFormat::kBinary:
        return "binary";
    }
    return "unknown";
}

void apply_config_entry(PipelineConfig& config, const std::string& raw_key,
                        const std::string& raw_value) {
    const std::string key = trim(raw_key);
    const std::string value = trim(raw_value);
    if (key == "input") {
        config.input_path = value;
    } else if (key == "input-glob") {
        config.input_glob = value;
    } else if (key == "corpus-manifest") {
        config.corpus_manifest = value;
    } else if (key == "corpus") {
        config.corpus_spec = value;
    } else if (key == "input-kind") {
        if (value == "edges") config.input_kind = InputKind::kEdgeList;
        else if (value == "degrees") config.input_kind = InputKind::kDegreeSequence;
        else if (value == "generator") config.input_kind = InputKind::kGenerator;
        else throw Error("config key \"input-kind\": expected edges|degrees|generator, got \"" +
                         value + "\"");
    } else if (key == "init") {
        if (value == "havel-hakimi") config.init = InitMethod::kHavelHakimi;
        else if (value == "configuration-model")
            config.init = InitMethod::kConfigurationModel;
        else throw Error(
            "config key \"init\": expected havel-hakimi|configuration-model, got \"" +
            value + "\"");
    } else if (key == "generator") {
        config.generator = value;
    } else if (key == "gen-n") {
        config.gen_n = parse_u64(key, value);
    } else if (key == "gen-m") {
        config.gen_m = parse_u64(key, value);
    } else if (key == "gen-gamma") {
        config.gen_gamma = parse_double(key, value);
    } else if (key == "gen-rows") {
        config.gen_rows = parse_u64(key, value);
    } else if (key == "gen-cols") {
        config.gen_cols = parse_u64(key, value);
    } else if (key == "gen-degree") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"gen-degree\": value too large");
        config.gen_degree = static_cast<std::uint32_t>(v);
    } else if (key == "algorithm") {
        config.algorithm = value;
    } else if (key == "supersteps") {
        if (value == "adaptive") {
            config.adaptive = true;
        } else {
            config.adaptive = false;
            config.supersteps = parse_u64(key, value);
        }
    } else if (key == "ess-target") {
        config.ess_target = parse_double(key, value);
    } else if (key == "mixing-tau") {
        config.mixing_tau = parse_double(key, value);
    } else if (key == "min-supersteps") {
        config.min_supersteps = parse_u64(key, value);
    } else if (key == "max-supersteps") {
        config.max_supersteps = parse_u64(key, value);
    } else if (key == "check-every") {
        config.check_every = parse_u64(key, value);
    } else if (key == "pl") {
        config.pl = parse_double(key, value);
    } else if (key == "prefetch") {
        config.prefetch = parse_bool(key, value);
    } else if (key == "edge-set-backend") {
        const auto backend = edge_set_backend_from_string(value);
        if (!backend) {
            throw Error("config key \"edge-set-backend\": expected locked|lockfree, got \"" +
                        value + "\"");
        }
        config.edge_set_backend = *backend;
    } else if (key == "small-cutoff") {
        config.small_graph_cutoff = parse_u64(key, value);
    } else if (key == "replicates") {
        config.replicates = parse_u64(key, value);
    } else if (key == "seed") {
        config.seed = parse_u64(key, value);
    } else if (key == "threads") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"threads\": value too large");
        config.threads = static_cast<unsigned>(v);
    } else if (key == "policy") {
        if (value == "auto") config.policy = SchedulePolicy::kAuto;
        else if (value == "replicates") config.policy = SchedulePolicy::kReplicates;
        else if (value == "intra-chain") config.policy = SchedulePolicy::kIntraChain;
        else if (value == "hybrid") config.policy = SchedulePolicy::kHybrid;
        else throw Error(
            "config key \"policy\": expected auto|replicates|intra-chain|hybrid, got \"" +
            value + "\"");
    } else if (key == "chain-threads") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"chain-threads\": value too large");
        config.chain_threads = static_cast<unsigned>(v);
    } else if (key == "max-concurrent") {
        const std::uint64_t v = parse_u64(key, value);
        GESMC_CHECK(v <= 0xFFFFFFFFull, "config key \"max-concurrent\": value too large");
        config.max_concurrent = static_cast<unsigned>(v);
    } else if (key == "checkpoint-every") {
        config.checkpoint_every = parse_u64(key, value);
    } else if (key == "resume-from") {
        config.resume_from = value;
    } else if (key == "keep-checkpoints") {
        config.keep_checkpoints = parse_bool(key, value);
    } else if (key == "output-dir") {
        config.output_dir = value;
    } else if (key == "output-prefix") {
        config.output_prefix = value;
    } else if (key == "output-format") {
        if (value == "text") config.output_format = OutputFormat::kText;
        else if (value == "binary") config.output_format = OutputFormat::kBinary;
        else throw Error("config key \"output-format\": expected text|binary, got \"" +
                         value + "\"");
    } else if (key == "report") {
        config.report_path = value;
    } else if (key == "metrics") {
        config.metrics = parse_bool(key, value);
    } else if (key == "verify") {
        config.verify = parse_bool(key, value);
    } else {
        throw Error("unknown config key: \"" + key + "\"");
    }
}

PipelineConfig read_pipeline_config(std::istream& is) {
    PipelineConfig config;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#' || stripped[0] == '%') continue;
        const std::size_t eq = stripped.find('=');
        GESMC_CHECK(eq != std::string::npos,
                    "config line " + std::to_string(line_no) + ": expected \"key = value\", got \"" +
                        stripped + "\"");
        try {
            apply_config_entry(config, stripped.substr(0, eq), stripped.substr(eq + 1));
        } catch (const Error& e) {
            // Re-throw with the position: a bad entry in a many-key corpus
            // document must point at its line, not make the user bisect.
            throw Error("config line " + std::to_string(line_no) + ": " + e.what());
        }
    }
    return config;
}

PipelineConfig read_pipeline_config_file(const std::string& path) {
    std::ifstream is(path);
    GESMC_CHECK(is.good(), "cannot open config: " + path);
    return read_pipeline_config(is);
}

PipelineConfig read_pipeline_config_string(const std::string& text) {
    std::istringstream is(text);
    return read_pipeline_config(is);
}

std::string pipeline_config_to_string(const PipelineConfig& config) {
    const PipelineConfig defaults;
    std::ostringstream os;
    const auto put = [&os](const char* key, const std::string& value) {
        GESMC_CHECK(value.find('\n') == std::string::npos,
                    std::string("config key \"") + key +
                        "\" cannot be rendered: value contains a newline");
        os << key << " = " << value << "\n";
    };
    const auto put_u64 = [&put](const char* key, std::uint64_t v) {
        put(key, std::to_string(v));
    };
    const auto put_double = [&put](const char* key, double v) {
        std::ostringstream s;
        s.precision(17); // round-trippable, matching the JSON report emitter
        s << v;
        put(key, s.str());
    };
    const auto put_bool = [&put](const char* key, bool v) {
        put(key, v ? "true" : "false");
    };

    if (config.input_path != defaults.input_path) put("input", config.input_path);
    if (config.input_glob != defaults.input_glob) put("input-glob", config.input_glob);
    if (config.corpus_manifest != defaults.corpus_manifest) {
        put("corpus-manifest", config.corpus_manifest);
    }
    if (config.corpus_spec != defaults.corpus_spec) put("corpus", config.corpus_spec);
    if (config.input_kind != defaults.input_kind) {
        put("input-kind", to_string(config.input_kind));
    }
    if (config.init != defaults.init) put("init", to_string(config.init));
    if (config.generator != defaults.generator) put("generator", config.generator);
    if (config.gen_n != defaults.gen_n) put_u64("gen-n", config.gen_n);
    if (config.gen_m != defaults.gen_m) put_u64("gen-m", config.gen_m);
    if (config.gen_gamma != defaults.gen_gamma) put_double("gen-gamma", config.gen_gamma);
    if (config.gen_rows != defaults.gen_rows) put_u64("gen-rows", config.gen_rows);
    if (config.gen_cols != defaults.gen_cols) put_u64("gen-cols", config.gen_cols);
    if (config.gen_degree != defaults.gen_degree) put_u64("gen-degree", config.gen_degree);
    if (config.algorithm != defaults.algorithm) put("algorithm", config.algorithm);
    if (config.adaptive) {
        // "supersteps = adaptive" plus the non-default stopping knobs; the
        // numeric supersteps value is meaningless in this mode.
        put("supersteps", "adaptive");
        if (config.ess_target != defaults.ess_target) {
            put_double("ess-target", config.ess_target);
        }
        if (config.mixing_tau != defaults.mixing_tau) {
            put_double("mixing-tau", config.mixing_tau);
        }
        if (config.min_supersteps != defaults.min_supersteps) {
            put_u64("min-supersteps", config.min_supersteps);
        }
        if (config.max_supersteps != defaults.max_supersteps) {
            put_u64("max-supersteps", config.max_supersteps);
        }
        if (config.check_every != defaults.check_every) {
            put_u64("check-every", config.check_every);
        }
    } else if (config.supersteps != defaults.supersteps) {
        put_u64("supersteps", config.supersteps);
    }
    if (config.pl != defaults.pl) put_double("pl", config.pl);
    if (config.prefetch != defaults.prefetch) put_bool("prefetch", config.prefetch);
    if (config.edge_set_backend != defaults.edge_set_backend) {
        put("edge-set-backend", to_string(config.edge_set_backend));
    }
    if (config.small_graph_cutoff != defaults.small_graph_cutoff) {
        put_u64("small-cutoff", config.small_graph_cutoff);
    }
    if (config.replicates != defaults.replicates) put_u64("replicates", config.replicates);
    if (config.seed != defaults.seed) put_u64("seed", config.seed);
    if (config.threads != defaults.threads) put_u64("threads", config.threads);
    if (config.policy != defaults.policy) put("policy", to_string(config.policy));
    if (config.chain_threads != defaults.chain_threads) {
        put_u64("chain-threads", config.chain_threads);
    }
    if (config.max_concurrent != defaults.max_concurrent) {
        put_u64("max-concurrent", config.max_concurrent);
    }
    if (config.checkpoint_every != defaults.checkpoint_every) {
        put_u64("checkpoint-every", config.checkpoint_every);
    }
    if (config.resume_from != defaults.resume_from) put("resume-from", config.resume_from);
    if (config.keep_checkpoints != defaults.keep_checkpoints) {
        put_bool("keep-checkpoints", config.keep_checkpoints);
    }
    if (config.output_dir != defaults.output_dir) put("output-dir", config.output_dir);
    if (config.output_prefix != defaults.output_prefix) {
        put("output-prefix", config.output_prefix);
    }
    if (config.output_format != defaults.output_format) {
        put("output-format", to_string(config.output_format));
    }
    if (config.report_path != defaults.report_path) put("report", config.report_path);
    if (config.metrics != defaults.metrics) put_bool("metrics", config.metrics);
    if (config.verify != defaults.verify) put_bool("verify", config.verify);
    return os.str();
}

std::vector<std::string> split_input_list(const std::string& value) {
    std::vector<std::string> tokens;
    std::size_t i = 0;
    const auto is_space = [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
    };
    while (i < value.size()) {
        if (is_space(value[i])) {
            ++i;
            continue;
        }
        std::string token;
        if (value[i] == '"') {
            const std::size_t close = value.find('"', i + 1);
            GESMC_CHECK(close != std::string::npos,
                        "config key \"input\": unterminated quote in \"" + value + "\"");
            token = value.substr(i + 1, close - i - 1);
            i = close + 1;
        } else {
            const std::size_t start = i;
            while (i < value.size() && !is_space(value[i])) ++i;
            token = value.substr(start, i - start);
        }
        GESMC_CHECK(!token.empty(),
                    "config key \"input\": empty (quoted) path in \"" + value + "\"");
        tokens.push_back(std::move(token));
    }
    return tokens;
}

std::string single_input_path(const PipelineConfig& config) {
    const std::vector<std::string> tokens = split_input_list(config.input_path);
    if (tokens.empty()) return "";
    GESMC_CHECK(tokens.size() == 1,
                "config key \"input\" lists " + std::to_string(tokens.size()) +
                    " paths where a single input is expected");
    return tokens[0];
}

bool is_corpus_config(const PipelineConfig& config) {
    if (!config.input_glob.empty() || !config.corpus_manifest.empty() ||
        !config.corpus_spec.empty()) {
        return true;
    }
    // `input` with several entries names a corpus; a double-quoted path
    // containing spaces stays one entry (split_input_list).
    return split_input_list(config.input_path).size() > 1;
}

void validate_input_sources(const PipelineConfig& config) {
    std::vector<std::string> sources;
    if (!config.input_path.empty()) sources.push_back("input = " + config.input_path);
    if (!config.input_glob.empty()) {
        sources.push_back("input-glob = " + config.input_glob);
    }
    if (!config.corpus_manifest.empty()) {
        sources.push_back("corpus-manifest = " + config.corpus_manifest);
    }
    if (!config.corpus_spec.empty()) sources.push_back("corpus = " + config.corpus_spec);
    if (config.input_kind == InputKind::kGenerator) {
        sources.push_back("input-kind = generator");
    }
    if (sources.size() > 1) {
        std::string message = "contradictory input sources — a config names "
                              "exactly one of input / input-glob / "
                              "corpus-manifest / corpus / a generator, got:";
        for (const std::string& s : sources) message += "\n  " + s;
        throw Error(message);
    }
}

void validate(const PipelineConfig& config) {
    validate_input_sources(config);
    GESMC_CHECK(!is_corpus_config(config),
                "this config names a corpus of inputs; expand it with "
                "plan_corpus — gesmc_sample does so automatically, and "
                "gesmc_submit --corpus fans it out as per-graph jobs "
                "(run_pipeline and plain service submission handle single "
                "graphs only)");
    GESMC_CHECK(config.replicates > 0, "replicates must be >= 1");
    GESMC_CHECK(config.supersteps > 0, "supersteps must be >= 1");
    if (config.adaptive) {
        GESMC_CHECK(config.min_supersteps >= 1, "min-supersteps must be >= 1");
        GESMC_CHECK(config.max_supersteps >= config.min_supersteps,
                    "max-supersteps must be >= min-supersteps");
        GESMC_CHECK(config.check_every >= 1, "check-every must be >= 1");
        GESMC_CHECK(config.ess_target > 0, "ess-target must be > 0");
        GESMC_CHECK(config.mixing_tau >= 0 && config.mixing_tau <= 1,
                    "mixing-tau must be in [0, 1]");
    }
    GESMC_CHECK(config.pl > 0 && config.pl < 1, "pl must be in (0, 1)");
    if (config.input_kind == InputKind::kGenerator) {
        GESMC_CHECK(!config.generator.empty(),
                    "input-kind = generator requires the \"generator\" key");
        GESMC_CHECK(config.generator == "powerlaw" || config.generator == "gnp" ||
                        config.generator == "grid" || config.generator == "regular",
                    "generator must be powerlaw|gnp|grid|regular, got \"" +
                        config.generator + "\"");
    } else {
        GESMC_CHECK(!config.input_path.empty(),
                    "an \"input\" path is required (or set input-kind = generator)");
    }
    GESMC_CHECK(config.checkpoint_every == 0 || !config.output_dir.empty(),
                "checkpoint-every requires an output-dir to hold the checkpoints");
    // policy = replicates *means* T = 1; silently dropping a pinned wider
    // chain-threads would run single-threaded chains behind the user's
    // back.  (auto and hybrid honor the pin; intra-chain uses it as the
    // one chain's width.)
    GESMC_CHECK(config.policy != SchedulePolicy::kReplicates || config.chain_threads <= 1,
                "policy = replicates runs single-threaded chains; use policy = "
                "hybrid (or auto) to combine chain-threads = " +
                    std::to_string(config.chain_threads) +
                    " with concurrent replicates");
    // Mirror image: intra-chain *means* K = 1, so a wider max-concurrent
    // pin would be silently ignored.
    GESMC_CHECK(config.policy != SchedulePolicy::kIntraChain || config.max_concurrent <= 1,
                "policy = intra-chain runs one replicate at a time; use policy = "
                "hybrid (or auto) to combine max-concurrent = " +
                    std::to_string(config.max_concurrent) +
                    " with intra-chain parallelism");
}

} // namespace gesmc
