/// \file seeds.hpp
/// \brief Per-replicate seed derivation for batch sampling runs.
///
/// Every replicate owns an independent chain seeded by a value derived from
/// the run's master seed and the replicate index.  Derivation goes through
/// the same SplitMix64 mixing the counter-based streams use, with a domain
/// salt so replicate seeds never collide with the sub-stream keys a chain
/// derives internally from its own seed.  Consequences relied on by tests:
///   * deterministic: (master, index) alone decide the replicate seed — not
///     the thread count, the schedule policy, or execution order;
///   * independent: distinct indices give (statistically) unrelated streams,
///     so replicates are independent samples of the chain's distribution.
#pragma once

#include "util/bits.hpp"

#include <cstdint>

namespace gesmc {

/// Domain salt separating replicate-seed derivation from every other mix64
/// use in the library.
inline constexpr std::uint64_t kReplicateSeedSalt = 0x9b1c5e7a3fd24e19ULL;

/// Seed of replicate `index` in a run with master seed `master`.
[[nodiscard]] constexpr std::uint64_t replicate_seed(std::uint64_t master,
                                                     std::uint64_t index) noexcept {
    return mix64(master, kReplicateSeedSalt, index);
}

} // namespace gesmc
