/// \file seeds.hpp
/// \brief Per-replicate seed derivation for batch sampling runs.
///
/// Every replicate owns an independent chain seeded by a value derived from
/// the run's master seed and the replicate index.  Derivation goes through
/// the same SplitMix64 mixing the counter-based streams use, with a domain
/// salt so replicate seeds never collide with the sub-stream keys a chain
/// derives internally from its own seed.  Consequences relied on by tests:
///   * deterministic: (master, index) alone decide the replicate seed — not
///     the thread count, the schedule policy, or execution order;
///   * independent: distinct indices give (statistically) unrelated streams,
///     so replicates are independent samples of the chain's distribution.
#pragma once

#include "util/bits.hpp"

#include <cstdint>

namespace gesmc {

/// Domain salt separating replicate-seed derivation from every other mix64
/// use in the library.
inline constexpr std::uint64_t kReplicateSeedSalt = 0x9b1c5e7a3fd24e19ULL;

/// Seed of replicate `index` in a run with master seed `master`.
[[nodiscard]] constexpr std::uint64_t replicate_seed(std::uint64_t master,
                                                     std::uint64_t index) noexcept {
    return mix64(master, kReplicateSeedSalt, index);
}

/// Domain salt for per-graph master seeds in corpus runs — distinct from
/// kReplicateSeedSalt so graph seeds never collide with replicate seeds.
inline constexpr std::uint64_t kCorpusGraphSeedSalt = 0x5d8f02b6c4a7131dULL;

/// Domain salt for the generation seeds of synthetic corpus members
/// (`corpus = powerlaw ...`), separated from the chain-seed stream so the
/// input graphs and the switching randomness are independent.
inline constexpr std::uint64_t kCorpusGenSeedSalt = 0x37c41fa90be8d65bULL;

/// Master seed of corpus graph `graph_index` in a corpus with master seed
/// `master`: the graph's shard runs as a single-graph pipeline with this
/// seed, so its replicate seeds are replicate_seed(corpus_graph_seed(...),
/// r).  The derived value lands in the corpus summary, so any row can be
/// reproduced by a standalone run with `seed = <derived>` (docs/corpus.md).
[[nodiscard]] constexpr std::uint64_t corpus_graph_seed(std::uint64_t master,
                                                        std::uint64_t graph_index) noexcept {
    return mix64(master, kCorpusGraphSeedSalt, graph_index);
}

/// Generation seed of synthetic corpus member `graph_index`.
[[nodiscard]] constexpr std::uint64_t corpus_gen_seed(std::uint64_t master,
                                                      std::uint64_t graph_index) noexcept {
    return mix64(master, kCorpusGenSeedSalt, graph_index);
}

} // namespace gesmc
