#include "pipeline/corpus.hpp"

#include "analysis/gauges.hpp"
#include "check/checked_mutex.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "graph/io.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "pipeline/seeds.hpp"
#include "pipeline/shared_executor.hpp"
#include "util/check.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

namespace gesmc {

namespace {

namespace fs = std::filesystem;

std::string trim(const std::string& s) {
    const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto begin = s.begin();
    while (begin != s.end() && is_space(*begin)) ++begin;
    auto end = s.end();
    while (end != begin && is_space(*(end - 1))) --end;
    return std::string(begin, end);
}

std::vector<std::string> split_tokens(const std::string& text) {
    std::istringstream is(text);
    std::vector<std::string> tokens;
    std::string token;
    while (is >> token) tokens.push_back(std::move(token));
    return tokens;
}

/// Shell-style match with `*` (any run) and `?` (any one char); iterative
/// two-pointer with star backtracking — no pathological recursion.
bool glob_match(const std::string& pattern, const std::string& text) {
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

/// The graph's default name: the input's filename without its extension —
/// what the shard output directory is called.
std::string stem_name(const std::string& path) {
    return fs::path(path).stem().string();
}

void check_graph_name(const std::string& name, const std::string& origin) {
    GESMC_CHECK(!name.empty() && name != "." && name != "..",
                "corpus graph from " + origin + " has an unusable name \"" + name +
                    "\" (names become output subdirectories)");
    GESMC_CHECK(name.find('/') == std::string::npos &&
                    name.find('\\') == std::string::npos,
                "corpus graph name \"" + name + "\" (from " + origin +
                    ") must not contain path separators");
}

/// A path as it appears in an `input` list entry: double-quoted when it
/// contains whitespace, so it round-trips through split_input_list as one
/// entry (the spelling shards use on the wire).
std::string quoted_input_entry(const std::string& path) {
    const bool spaced = std::any_of(path.begin(), path.end(), [](unsigned char c) {
        return std::isspace(c) != 0;
    });
    if (!spaced) return path;
    GESMC_CHECK(path.find('"') == std::string::npos,
                "input path contains both spaces and a double quote: " + path);
    return '"' + path + '"';
}

std::vector<CorpusInput> expand_list(const std::string& input) {
    const std::vector<std::string> paths = split_input_list(input);
    // `input = my graph.txt` — one spaced path, not two files — is a
    // classic slip; catch it with a hint instead of two open failures.
    if (paths.size() > 1 && fs::exists(input)) {
        throw Error("input \"" + input +
                    "\" is one existing path containing spaces; double-quote it "
                    "(input = \"" + input + "\") to run it as a single graph");
    }
    std::vector<CorpusInput> graphs;
    for (const std::string& path : paths) {
        graphs.push_back(CorpusInput{stem_name(path), path});
    }
    return graphs;
}

std::vector<CorpusInput> expand_glob(const std::string& pattern) {
    const fs::path as_path(pattern);
    const fs::path dir = as_path.parent_path().empty() ? fs::path(".")
                                                       : as_path.parent_path();
    const std::string file_pattern = as_path.filename().string();
    GESMC_CHECK(dir.string().find('*') == std::string::npos &&
                    dir.string().find('?') == std::string::npos,
                "input-glob \"" + pattern +
                    "\": wildcards are supported in the filename component only");
    GESMC_CHECK(fs::is_directory(dir),
                "input-glob \"" + pattern + "\": directory " + dir.string() +
                    " does not exist");
    std::vector<std::string> matches;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (glob_match(file_pattern, name)) matches.push_back(entry.path().string());
    }
    GESMC_CHECK(!matches.empty(), "input-glob \"" + pattern + "\" matched no files");
    // Sorted expansion: directory iteration order is filesystem-dependent,
    // and the match order decides the per-graph seed indices.
    std::sort(matches.begin(), matches.end());
    std::vector<CorpusInput> graphs;
    graphs.reserve(matches.size());
    for (const std::string& path : matches) {
        graphs.push_back(CorpusInput{stem_name(path), path});
    }
    return graphs;
}

std::vector<CorpusInput> expand_manifest(const std::string& manifest_path) {
    std::ifstream is(manifest_path);
    GESMC_CHECK(is.good(), "cannot open corpus-manifest: " + manifest_path);
    return parse_corpus_manifest(is, manifest_path,
                                 fs::path(manifest_path).parent_path().string());
}

} // namespace

std::vector<CorpusInput> parse_corpus_manifest(std::istream& is,
                                               const std::string& manifest_path,
                                               const std::string& base_dir) {
    std::vector<CorpusInput> graphs;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        // Inline comments: '#'/'%' at line start or after whitespace opens
        // a comment (a '#' embedded in a path stays part of it).
        for (std::size_t i = 0; i < line.size(); ++i) {
            if ((line[i] == '#' || line[i] == '%') &&
                (i == 0 || std::isspace(static_cast<unsigned char>(line[i - 1])) != 0)) {
                line.resize(i);
                break;
            }
        }
        const std::string stripped = trim(line);
        if (stripped.empty()) continue;
        // "path" or "path :: name" — the explicit separator keeps paths
        // with spaces unambiguous (the one input spelling that allows them).
        std::string path = stripped;
        std::string name;
        const std::size_t sep = stripped.find("::");
        if (sep != std::string::npos) {
            path = trim(stripped.substr(0, sep));
            name = trim(stripped.substr(sep + 2));
            GESMC_CHECK(!name.empty(), "corpus-manifest " + manifest_path + " line " +
                                           std::to_string(line_no) +
                                           ": empty name after \"::\"");
        }
        GESMC_CHECK(!path.empty(), "corpus-manifest " + manifest_path + " line " +
                                       std::to_string(line_no) + ": empty path");
        // Relative entries resolve against the manifest's own directory, so
        // a manifest travels with its data set.
        if (fs::path(path).is_relative() && !base_dir.empty()) {
            path = (fs::path(base_dir) / path).string();
        }
        if (name.empty()) name = stem_name(path);
        graphs.push_back(CorpusInput{std::move(name), std::move(path)});
    }
    GESMC_CHECK(!graphs.empty(), "corpus-manifest " + manifest_path + " lists no inputs");
    return graphs;
}

namespace {

std::uint64_t spec_u64(const std::string& spec, const std::string& key,
                       const std::string& value) {
    std::istringstream is(value);
    std::uint64_t v = 0;
    GESMC_CHECK(value.find('-') == std::string::npos &&
                    static_cast<bool>(is >> v) && is.eof(),
                "corpus spec \"" + spec + "\": " + key +
                    " expects a non-negative integer, got \"" + value + "\"");
    return v;
}

double spec_double(const std::string& spec, const std::string& key,
                   const std::string& value) {
    std::istringstream is(value);
    double v = 0;
    GESMC_CHECK(static_cast<bool>(is >> v) && is.eof(),
                "corpus spec \"" + spec + "\": " + key + " expects a number, got \"" +
                    value + "\"");
    return v;
}

/// "07" — zero-padded to the count's digit width.
std::string padded(std::uint64_t index, std::uint64_t count) {
    std::string digits = std::to_string(index);
    const std::string width = std::to_string(count > 0 ? count - 1 : 0);
    while (digits.size() < width.size()) digits.insert(digits.begin(), '0');
    return digits;
}

/// Materializes `corpus = <spec>` members as canonical GESB files under
/// <output-dir>/corpus-inputs/ so every shard is a plain file-input run (a
/// corpus submitted to the service travels as per-graph file configs).
/// Deterministic: the same (spec, seed) always writes the same bytes, so
/// re-planning on resume is safe.
std::vector<CorpusInput> expand_synthetic(const PipelineConfig& config) {
    const std::string& spec = config.corpus_spec;
    GESMC_CHECK(!config.output_dir.empty(),
                "corpus = \"" + spec +
                    "\" requires an output-dir to hold the materialized member "
                    "graphs (corpus-inputs/)");
    const std::vector<std::string> tokens = split_tokens(spec);
    GESMC_CHECK(!tokens.empty(), "empty corpus spec");
    const std::string& kind = tokens[0];

    std::vector<std::pair<std::string, EdgeList>> members;
    if (kind == "test" || kind == "bench") {
        GESMC_CHECK(tokens.size() == 1,
                    "corpus spec \"" + spec + "\": " + kind + " takes no parameters");
        // The fixed seeded corpora from src/gen/corpus — the in-repo
        // stand-in for the paper's NetRep sample.  Their generation seeds
        // are fixed (identical across runs and master seeds); only the
        // switching randomness derives from this run's seed.
        for (CorpusEntry& entry : kind == "test" ? corpus_test() : corpus_bench()) {
            members.emplace_back(std::move(entry.name), std::move(entry.graph));
        }
    } else if (kind == "powerlaw" || kind == "gnp") {
        std::uint64_t n = 1000, m = 5000, count = 4;
        double gamma = 2.2;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
            const std::size_t eq = tokens[i].find('=');
            GESMC_CHECK(eq != std::string::npos, "corpus spec \"" + spec +
                                                     "\": expected key=value, got \"" +
                                                     tokens[i] + "\"");
            const std::string key = tokens[i].substr(0, eq);
            const std::string value = tokens[i].substr(eq + 1);
            if (key == "n") n = spec_u64(spec, key, value);
            else if (key == "count") count = spec_u64(spec, key, value);
            else if (key == "gamma" && kind == "powerlaw")
                gamma = spec_double(spec, key, value);
            else if (key == "m" && kind == "gnp") m = spec_u64(spec, key, value);
            else
                throw Error("corpus spec \"" + spec + "\": unknown parameter \"" + key +
                            "\" for " + kind);
        }
        GESMC_CHECK(count >= 1, "corpus spec \"" + spec + "\": count must be >= 1");
        for (std::uint64_t g = 0; g < count; ++g) {
            const std::uint64_t gen_seed = corpus_gen_seed(config.seed, g);
            EdgeList graph =
                kind == "powerlaw"
                    ? generate_powerlaw_graph(static_cast<node_t>(n), gamma, gen_seed)
                    : generate_gnp(static_cast<node_t>(n),
                                   gnp_probability_for_edges(static_cast<node_t>(n), m),
                                   gen_seed);
            members.emplace_back(kind + "-" + padded(g, count), std::move(graph));
        }
    } else {
        throw Error("corpus spec \"" + spec +
                    "\": expected test | bench | powerlaw ... | gnp ..., got \"" + kind +
                    "\"");
    }

    const fs::path dir = fs::path(config.output_dir) / "corpus-inputs";
    fs::create_directories(dir);
    std::vector<CorpusInput> graphs;
    graphs.reserve(members.size());
    for (const auto& [name, graph] : members) {
        const std::string path = (dir / (name + ".gesb")).string();
        write_edge_list_binary_file(path, graph);
        graphs.push_back(CorpusInput{name, path});
    }
    return graphs;
}

} // namespace

CorpusPlan plan_corpus(const PipelineConfig& config) {
    validate_input_sources(config);
    GESMC_CHECK(is_corpus_config(config),
                "config does not name a corpus: give several inputs, an "
                "input-glob, a corpus-manifest, or a corpus spec");
    CorpusPlan plan;
    plan.base = config;
    if (!config.corpus_spec.empty()) {
        plan.graphs = expand_synthetic(config);
    } else if (!config.corpus_manifest.empty()) {
        plan.graphs = expand_manifest(config.corpus_manifest);
    } else if (!config.input_glob.empty()) {
        plan.graphs = expand_glob(config.input_glob);
    } else {
        plan.graphs = expand_list(config.input_path);
    }

    // Names become output subdirectories: two inputs that would share one
    // (g.gesb in two different directories) must fail loudly here, not
    // silently overwrite each other's replicates at run time.
    std::map<std::string, std::string> seen; // name -> first path
    for (const CorpusInput& graph : plan.graphs) {
        check_graph_name(graph.name, graph.path);
        const auto [it, inserted] = seen.emplace(graph.name, graph.path);
        GESMC_CHECK(inserted,
                    "duplicate corpus graph name \"" + graph.name + "\": both " +
                        it->second + " and " + graph.path +
                        " would write into the same per-graph output directory; "
                        "rename an input or give explicit names in a "
                        "corpus-manifest (\"path :: name\")");
    }

    // Field-level validation through the shards themselves — each shard is
    // an ordinary single-graph config, so bad corpus-level fields (zero
    // replicates, checkpoint-every without output-dir, policy
    // contradictions, ...) surface with the standard messages at plan time.
    for (std::size_t i = 0; i < plan.graphs.size(); ++i) {
        validate(corpus_shard(plan, i));
    }
    return plan;
}

PipelineConfig corpus_shard(const CorpusPlan& plan, std::size_t index) {
    GESMC_CHECK(index < plan.graphs.size(), "corpus shard index out of range");
    const CorpusInput& graph = plan.graphs[index];
    PipelineConfig shard = plan.base;
    shard.input_path = quoted_input_entry(graph.path);
    shard.input_glob.clear();
    shard.corpus_manifest.clear();
    shard.corpus_spec.clear();
    shard.generator.clear();
    if (!plan.base.corpus_spec.empty()) shard.input_kind = InputKind::kEdgeList;
    shard.seed = corpus_graph_seed(plan.base.seed, index);
    if (!plan.base.output_dir.empty()) {
        shard.output_dir = (fs::path(plan.base.output_dir) / graph.name).string();
        shard.report_path = (fs::path(shard.output_dir) / "report.json").string();
    } else {
        shard.report_path.clear();
    }
    if (!plan.base.resume_from.empty()) {
        // Resume composes per graph: point the shard at its previous
        // directory only when that directory holds resumable state —
        // checkpoints, or (for a shard that completed and cleaned its
        // checkpoints) its outputs.  A member the interrupted run never
        // started begins fresh instead of tripping run_pipeline's
        // missing-state check.
        const fs::path prev = fs::path(plan.base.resume_from) / graph.name;
        bool resumable = false;
        std::error_code ec;
        const fs::path checkpoints = prev / "checkpoints";
        if (fs::exists(checkpoints, ec) && !fs::is_empty(checkpoints, ec)) {
            resumable = true;
        } else if (fs::is_directory(prev, ec)) {
            const std::string prefix = plan.base.output_prefix + "_";
            for (const fs::directory_entry& entry : fs::directory_iterator(prev, ec)) {
                if (entry.is_regular_file() &&
                    entry.path().filename().string().rfind(prefix, 0) == 0) {
                    resumable = true;
                    break;
                }
            }
        }
        shard.resume_from = resumable ? prev.string() : "";
    }
    return shard;
}

CorpusGraphRow corpus_row_from_report(const CorpusInput& input,
                                      const RunReport& report) {
    CorpusGraphRow row;
    row.name = input.name;
    row.input_path = input.path;
    row.seed = report.config.seed;
    row.input_nodes = report.input_nodes;
    row.input_edges = report.input_edges;
    row.replicates = report.replicates.size();
    row.seconds = report.total_seconds;
    row.switches_per_second = report.switches_per_second();

    std::uint64_t attempted = 0, accepted = 0, with_metrics = 0, with_adaptive = 0;
    double triangles = 0, clustering = 0, assortativity = 0, components = 0;
    double realized = 0;
    for (const ReplicateReport& r : report.replicates) {
        attempted += r.stats.attempted;
        accepted += r.stats.accepted;
        if (r.has_adaptive) {
            ++with_adaptive;
            realized += static_cast<double>(r.realized_supersteps);
        }
        if (!r.error.empty()) {
            if (is_interrupt_error(r.error)) {
                ++row.interrupted;
            } else {
                ++row.failed;
                if (row.error.empty()) row.error = r.error;
            }
        }
        if (r.has_metrics) {
            ++with_metrics;
            triangles += static_cast<double>(r.triangles);
            clustering += r.global_clustering;
            assortativity += r.assortativity;
            components += static_cast<double>(r.components);
        }
    }
    row.acceptance_rate =
        attempted > 0 ? static_cast<double>(accepted) / static_cast<double>(attempted)
                      : 0;
    if (with_metrics > 0) {
        row.has_metrics = true;
        const double n = static_cast<double>(with_metrics);
        row.mean_triangles = triangles / n;
        row.mean_clustering = clustering / n;
        row.mean_assortativity = assortativity / n;
        row.mean_components = components / n;
    }
    if (with_adaptive > 0) {
        row.has_adaptive = true;
        row.configured_supersteps = report.config.max_supersteps;
        row.mean_realized_supersteps = realized / static_cast<double>(with_adaptive);
    }
    return row;
}

bool all_succeeded(const CorpusReport& report) {
    for (const CorpusGraphRow& row : report.rows) {
        if (row.failed > 0 || row.interrupted > 0 || !row.error.empty()) return false;
    }
    return !report.rows.empty();
}

bool was_interrupted(const CorpusReport& report) {
    for (const CorpusGraphRow& row : report.rows) {
        if (row.interrupted > 0) return true;
    }
    return false;
}

namespace {

/// Size of the first replicate wave of the two-phase early-stop, or 0 when
/// the shard runs single-phase.  Two-phase needs adaptive mode (the feature
/// it exists to amortize), per-replicate metrics (the stability signal) and
/// enough replicates that skipping the second wave actually saves work.
std::uint64_t two_phase_window(const PipelineConfig& shard) {
    if (!shard.adaptive || !shard.metrics || shard.replicates < 4) return 0;
    const std::uint64_t window =
        std::max<std::uint64_t>(3, (shard.replicates + 1) / 2);
    return window < shard.replicates ? window : 0;
}

/// Deterministic stability verdict over the first wave: every replicate
/// succeeded with metrics, and the triangle counts agree — coefficient of
/// variation <= 0.2 and every z-score within 3 sigma.  A constant series is
/// stable (sd == 0 is the strongest possible agreement).
bool phase1_stable(const RunReport& run, std::uint64_t window) {
    std::vector<double> xs;
    xs.reserve(window);
    double sum = 0, sumsq = 0;
    for (std::uint64_t i = 0; i < window; ++i) {
        const ReplicateReport& r = run.replicates[i];
        if (!r.error.empty() || !r.has_metrics) return false;
        const double x = static_cast<double>(r.triangles);
        xs.push_back(x);
        sum += x;
        sumsq += x * x;
    }
    const double n = static_cast<double>(window);
    const double mean = sum / n;
    const double var = std::max(0.0, sumsq / n - mean * mean);
    const double sd = std::sqrt(var);
    if (sd == 0.0) return true;
    if (std::abs(mean) < 1e-12) return false;
    if (sd / std::abs(mean) > 0.2) return false;
    for (const double x : xs) {
        if (std::abs((x - mean) / sd) > 3.0) return false;
    }
    return true;
}

/// Forwards one shard's replicate completions to the corpus hooks with the
/// member's plan index attached.
class HookObserver final : public RunObserver {
public:
    HookObserver(const CorpusHooks& hooks, std::size_t graph)
        : hooks_(&hooks), graph_(graph) {}

    void on_replicate_done(const ReplicateReport& report) override {
        if (hooks_->on_replicate_done != nullptr) {
            hooks_->on_replicate_done(graph_, report);
        }
    }

private:
    const CorpusHooks* hooks_;
    std::size_t graph_;
};

} // namespace

CorpusReport run_corpus(const CorpusPlan& plan, std::ostream* log,
                        const std::atomic<bool>* interrupt, const CorpusHooks& hooks) {
    GESMC_CHECK(!plan.graphs.empty(), "empty corpus plan");
    CorpusReport report;
    report.config = plan.base;
    report.rows.resize(plan.graphs.size());

    Timer total_timer;
    // One budget for the whole corpus: every shard's (graph x replicate)
    // cells are tasks of this executor, popped round-robin across graphs —
    // replicates of different graphs interleave instead of graphs running
    // serially, and the summed leased width never exceeds the budget.
    SharedExecutor executor(plan.base.threads);

    if (log != nullptr) {
        const ResolvedSchedule schedule = executor.resolve(
            plan.base.replicates, ScheduleRequest{plan.base.policy,
                                                 plan.base.chain_threads,
                                                 plan.base.max_concurrent});
        *log << "corpus: " << plan.graphs.size() << " graphs x "
             << plan.base.replicates << " replicates of " << plan.base.algorithm
             << ", budget = " << executor.threads() << " threads, per-graph schedule = "
             << to_string(schedule.policy) << " (" << schedule.max_concurrent << " x "
             << schedule.chain_threads << ")\n";
        if (plan.base.algorithm == "naive-par-es") {
            *log << "corpus: warning: naive-par-es outputs depend on the schedule's "
                    "chain-threads (inexact chain); only exact chains are "
                    "byte-reproducible across corpus and standalone runs\n";
        }
    }

    CheckedMutex log_mutex{LockRank::kCorpusLog, "corpus.log"};
    std::size_t finished = 0;

    // Streamed rows: one compact JSON line per graph, appended the moment
    // the graph settles — a 10k-graph overnight run is monitorable (tail -f)
    // long before the merged summary exists.
    std::ofstream rows_stream;
    CheckedMutex rows_mutex{LockRank::kCorpusRowStream, "corpus.rows"};
    if (!plan.base.output_dir.empty()) {
        fs::create_directories(plan.base.output_dir);
        const std::string rows_path =
            (fs::path(plan.base.output_dir) / "corpus_rows.ndjson").string();
        rows_stream.open(rows_path, std::ios::trunc);
        GESMC_CHECK(rows_stream.good(),
                    "cannot open corpus row stream for writing: " + rows_path);
    }

    // Bounded coordinator pool: a coordinator only materializes its graph's
    // input and parks in SharedExecutor::run while the shared worker team
    // computes, but parked threads still cost stacks — a 10k-graph corpus
    // must not spawn 10k of them.  The cap keeps every budget thread
    // feedable (and stays above the handful of graphs the interleaving
    // tests run concurrently); graphs beyond it run in waves as
    // coordinators free up.
    const std::size_t coordinator_cap = std::min<std::size_t>(
        plan.graphs.size(), std::max<std::size_t>(executor.threads(), 8));
    struct CorpusGauges {
        obs::Gauge& cap =
            obs::MetricsRegistry::instance().gauge("corpus.coordinator_cap");
        obs::Gauge& active =
            obs::MetricsRegistry::instance().gauge("corpus.coordinators_active");
        obs::Counter& graphs_done =
            obs::MetricsRegistry::instance().counter("corpus.graphs.done");
        obs::Counter& stopped_early =
            obs::MetricsRegistry::instance().counter("corpus.graphs.stopped_early");
    };
    static CorpusGauges& gauges = *new CorpusGauges();
    gauges.cap.set(static_cast<std::int64_t>(coordinator_cap));

    std::atomic<std::size_t> next_graph{0};
    std::vector<std::thread> runners;
    runners.reserve(coordinator_cap);
    for (std::size_t c = 0; c < coordinator_cap; ++c) {
        runners.emplace_back([&] {
            for (;;) {
                const std::size_t i = next_graph.fetch_add(1, std::memory_order_relaxed);
                if (i >= plan.graphs.size()) return;
                gauges.active.add(1);
                const CorpusInput& input = plan.graphs[i];
                const PipelineConfig shard = corpus_shard(plan, i);
                CorpusGraphRow& row = report.rows[i];
                HookObserver observer(hooks, i);
                try {
                    PipelineExec exec;
                    exec.executor = &executor;
                    exec.interrupt = interrupt;
                    RunReport run;
                    bool stopped_early = false;
                    const std::uint64_t window = two_phase_window(shard);
                    if (window > 0) {
                        // Two-phase early-stop (adaptive runs only): run the
                        // first wave of replicates, and skip the rest when
                        // their z-scores already agree — the per-graph
                        // analogue of the per-chain adaptive stop.  Both
                        // phases are partial-range runs, so the coordinator
                        // owns the shard's finalization (report.json,
                        // checkpoint cleanup) after assembling the report.
                        PipelineExec phase1 = exec;
                        phase1.replicate_end = window;
                        run = run_pipeline(shard, nullptr, &observer, phase1);
                        if (phase1_stable(run, window) && !was_interrupted(run)) {
                            stopped_early = true;
                            run.replicates.resize(window);
                        } else {
                            // Not stable (or draining): the second wave runs
                            // — or, under an interrupt, records its
                            // replicates as interrupted without running, the
                            // same outcome a single-phase run produces.
                            PipelineExec phase2 = exec;
                            phase2.replicate_begin = window;
                            RunReport rest =
                                run_pipeline(shard, nullptr, &observer, phase2);
                            for (std::uint64_t r = window; r < shard.replicates; ++r) {
                                run.replicates[r] = std::move(rest.replicates[r]);
                            }
                            run.total_seconds += rest.total_seconds;
                        }
                        if (shard.checkpoint_every > 0 && !shard.keep_checkpoints &&
                            all_succeeded(run)) {
                            remove_run_checkpoints(shard);
                        }
                        if (!shard.report_path.empty()) {
                            write_json_report_file(shard.report_path, run);
                        }
                    } else {
                        run = run_pipeline(shard, nullptr, &observer, exec);
                    }
                    row = corpus_row_from_report(input, run);
                    row.stopped_early = stopped_early;
                    if (stopped_early) gauges.stopped_early.add(1);
                    // Replicate z-scores of the finished shard as live
                    // gauges (analysis/gauges.hpp): how far the shard's
                    // most extreme replicate sits from its siblings.
                    publish_corpus_z_gauges(run);
                    if (hooks.on_graph_done != nullptr) hooks.on_graph_done(i, run);
                } catch (const std::exception& e) {
                    // A shard-level failure (unreadable input, bad resume
                    // state) fails its row; the other graphs keep running.
                    row.name = input.name;
                    row.input_path = input.path;
                    row.seed = shard.seed;
                    row.replicates = shard.replicates;
                    row.failed = shard.replicates;
                    row.error = e.what();
                }
                if (!row.error.empty()) {
                    GESMC_LOG_EVENT(Error, "corpus", "graph_failed")
                        .str("graph", input.name)
                        .num("failed", row.failed)
                        .str("error", row.error);
                } else if (row.interrupted > 0) {
                    GESMC_LOG_EVENT(Warn, "corpus", "graph_interrupted")
                        .str("graph", input.name)
                        .num("interrupted", row.interrupted);
                } else {
                    GESMC_LOG_EVENT(Info, "corpus", "graph_done")
                        .str("graph", input.name)
                        .num("replicates", row.replicates)
                        .real("seconds", row.seconds);
                }
                gauges.graphs_done.add(1);
                gauges.active.add(-1);
                if (rows_stream.is_open()) {
                    const CheckedLockGuard lock(rows_mutex);
                    rows_stream << corpus_row_ndjson(row) << '\n';
                    rows_stream.flush();
                }
                if (log != nullptr) {
                    const CheckedLockGuard lock(log_mutex);
                    ++finished;
                    *log << "corpus: graph " << input.name << " "
                         << (row.error.empty() && row.interrupted == 0
                                 ? "done"
                                 : row.interrupted > 0 ? "interrupted" : "FAILED")
                         << " in " << fmt_seconds(row.seconds) << " ("
                         << fmt_si(row.switches_per_second) << " switches/s) ["
                         << finished << "/" << plan.graphs.size() << "]\n";
                }
            }
        });
    }
    for (std::thread& runner : runners) runner.join();
    report.total_seconds = total_timer.elapsed_s();

    if (!plan.base.report_path.empty()) {
        const fs::path parent = fs::path(plan.base.report_path).parent_path();
        if (!parent.empty()) fs::create_directories(parent);
        write_corpus_json_file(plan.base.report_path, report);
    }
    std::uint64_t total_failed = 0;
    for (const CorpusGraphRow& row : report.rows) total_failed += row.failed;
    if (log != nullptr) {
        *log << "corpus: done in " << fmt_seconds(report.total_seconds) << " ("
             << report.rows.size() << " graphs";
        if (total_failed > 0) *log << ", " << total_failed << " replicate(s) FAILED";
        *log << ")\n";
    }
    GESMC_LOG_EVENT(Info, "corpus", "run_done")
        .num("graphs", static_cast<std::uint64_t>(report.rows.size()))
        .num("failed", total_failed)
        .real("seconds", report.total_seconds);
    return report;
}

namespace {

/// Compact JSON double, matching JsonWriter's round-trippable precision and
/// its null spelling for non-finite values.
std::string ndjson_double(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string ndjson_quote(const std::string& s) {
    std::ostringstream os;
    write_json_escaped(os, s);
    return os.str();
}

/// min / median / max over the rows of one column.
void write_aggregate(JsonWriter& w, const std::string& key, std::vector<double> values) {
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    const double median = n % 2 == 1
                              ? values[n / 2]
                              : (values[n / 2 - 1] + values[n / 2]) / 2.0;
    w.key(key);
    w.begin_object();
    w.kv("min", values.front());
    w.kv("median", median);
    w.kv("max", values.back());
    w.end_object();
}

} // namespace

void write_corpus_json(std::ostream& os, const CorpusReport& report) {
    JsonWriter w(os);
    w.begin_object();

    w.key("corpus");
    w.begin_object();
    w.kv("graphs", static_cast<std::uint64_t>(report.rows.size()));
    w.kv("seed", report.config.seed);
    w.kv("algorithm", report.config.algorithm);
    if (report.config.adaptive) {
        w.kv("supersteps", "adaptive");
        w.kv("max_supersteps", report.config.max_supersteps);
    } else {
        w.kv("supersteps", report.config.supersteps);
    }
    w.kv("replicates_per_graph", report.config.replicates);
    w.kv("policy", to_string(report.config.policy));
    w.kv("requested_threads", report.config.threads);
    // Echo the one input source so the summary re-derives its expansion.
    if (!report.config.input_path.empty()) w.kv("input", report.config.input_path);
    if (!report.config.input_glob.empty()) w.kv("input_glob", report.config.input_glob);
    if (!report.config.corpus_manifest.empty()) {
        w.kv("corpus_manifest", report.config.corpus_manifest);
    }
    if (!report.config.corpus_spec.empty()) w.kv("corpus", report.config.corpus_spec);
    w.kv("output_dir", report.config.output_dir);
    w.kv("checkpoint_every", report.config.checkpoint_every);
    if (!report.config.resume_from.empty()) {
        w.kv("resume_from", report.config.resume_from);
    }
    w.end_object();

    w.kv("total_seconds", report.total_seconds);

    w.key("graphs");
    w.begin_array();
    bool all_metrics = !report.rows.empty();
    for (const CorpusGraphRow& row : report.rows) {
        all_metrics = all_metrics && row.has_metrics;
        w.begin_object();
        w.kv("name", row.name);
        w.kv("input", row.input_path);
        w.kv("seed", row.seed);
        w.kv("nodes", row.input_nodes);
        w.kv("edges", row.input_edges);
        w.kv("replicates", row.replicates);
        w.kv("failed", row.failed);
        w.kv("interrupted", row.interrupted);
        w.kv("seconds", row.seconds);
        w.kv("switches_per_second", row.switches_per_second);
        w.kv("acceptance_rate", row.acceptance_rate);
        if (row.has_adaptive) {
            w.kv("stopped_early", row.stopped_early);
            w.kv("configured_supersteps", row.configured_supersteps);
            w.kv("mean_realized_supersteps", row.mean_realized_supersteps);
        }
        if (!row.error.empty()) w.kv("error", row.error);
        if (row.has_metrics) {
            w.key("metrics");
            w.begin_object();
            w.kv("mean_triangles", row.mean_triangles);
            w.kv("mean_global_clustering", row.mean_clustering);
            w.kv("mean_assortativity", row.mean_assortativity);
            w.kv("mean_components", row.mean_components);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();

    // Corpus-level spread: min / median / max across the per-graph rows of
    // timings, switch acceptance, and (when every row has them) the proxy
    // metrics — the aggregate view Milo-style corpus studies read first.
    if (!report.rows.empty()) {
        std::vector<double> seconds, sps, acceptance;
        std::vector<double> triangles, clustering, assortativity, components;
        for (const CorpusGraphRow& row : report.rows) {
            seconds.push_back(row.seconds);
            sps.push_back(row.switches_per_second);
            acceptance.push_back(row.acceptance_rate);
            if (row.has_metrics) {
                triangles.push_back(row.mean_triangles);
                clustering.push_back(row.mean_clustering);
                assortativity.push_back(row.mean_assortativity);
                components.push_back(row.mean_components);
            }
        }
        w.key("aggregates");
        w.begin_object();
        write_aggregate(w, "seconds", std::move(seconds));
        write_aggregate(w, "switches_per_second", std::move(sps));
        write_aggregate(w, "acceptance_rate", std::move(acceptance));
        if (all_metrics) {
            write_aggregate(w, "mean_triangles", std::move(triangles));
            write_aggregate(w, "mean_global_clustering", std::move(clustering));
            write_aggregate(w, "mean_assortativity", std::move(assortativity));
            write_aggregate(w, "mean_components", std::move(components));
        }
        w.end_object();
    }

    w.end_object();
    os << '\n';
}

void write_corpus_json_file(const std::string& path, const CorpusReport& report) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open corpus report for writing: " + path);
    write_corpus_json(os, report);
}

std::string corpus_row_ndjson(const CorpusGraphRow& row) {
    std::string out = "{\"name\": " + ndjson_quote(row.name);
    out += ", \"input\": " + ndjson_quote(row.input_path);
    out += ", \"seed\": " + std::to_string(row.seed);
    out += ", \"nodes\": " + std::to_string(row.input_nodes);
    out += ", \"edges\": " + std::to_string(row.input_edges);
    out += ", \"replicates\": " + std::to_string(row.replicates);
    out += ", \"failed\": " + std::to_string(row.failed);
    out += ", \"interrupted\": " + std::to_string(row.interrupted);
    out += ", \"seconds\": " + ndjson_double(row.seconds);
    out += ", \"switches_per_second\": " + ndjson_double(row.switches_per_second);
    out += ", \"acceptance_rate\": " + ndjson_double(row.acceptance_rate);
    if (row.has_adaptive) {
        out += std::string(", \"stopped_early\": ") +
               (row.stopped_early ? "true" : "false");
        out += ", \"configured_supersteps\": " + std::to_string(row.configured_supersteps);
        out += ", \"mean_realized_supersteps\": " +
               ndjson_double(row.mean_realized_supersteps);
    }
    if (!row.error.empty()) out += ", \"error\": " + ndjson_quote(row.error);
    if (row.has_metrics) {
        out += ", \"metrics\": {\"mean_triangles\": " + ndjson_double(row.mean_triangles);
        out += ", \"mean_global_clustering\": " + ndjson_double(row.mean_clustering);
        out += ", \"mean_assortativity\": " + ndjson_double(row.mean_assortativity);
        out += ", \"mean_components\": " + ndjson_double(row.mean_components);
        out += "}";
    }
    out += "}";
    return out;
}

} // namespace gesmc
