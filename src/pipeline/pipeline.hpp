/// \file pipeline.hpp
/// \brief The batch sampling pipeline: config in, R replicate graphs +
/// JSON report out.
///
/// This is the subsystem that turns the G-ES-MC chains into a service-shaped
/// sampler (ROADMAP north star).  One run:
///
///   1. ingests an input — an edge list (text or GESB binary), a degree
///      sequence, or a built-in generator spec;
///   2. materializes one initial simple graph (degree sequences via
///      Havel–Hakimi or the repaired configuration model);
///   3. runs R independent replicates of the configured chain, each seeded
///      by replicate_seed(master, index), scheduled over one machine-level
///      thread budget under the configured policy — replicate-parallel,
///      intra-chain, or hybrid K x T (see scheduler.hpp and
///      docs/scheduling.md);
///   4. writes one output graph per replicate plus a JSON run report with
///      timings, ChainStats and structural metrics.
///
/// Replicate results are a pure function of (config, seed): the chains use
/// counter-based randomness, so neither the thread count nor the schedule
/// policy changes any output byte — asserted by tests/test_pipeline.cpp.
/// Exception: naive-par-es (thread partition is part of the process, paper
/// §5.1) is only reproducible for a fixed policy and thread count.
///
/// Failure model: a replicate that throws (IO error, invariant violation)
/// records its message in ReplicateReport::error; the remaining replicates
/// still run.  Callers check RunReport::all_succeeded (the CLI exits
/// non-zero, tests assert it).
///
/// Checkpoint/resume: with checkpoint_every > 0 the run persists each
/// replicate's ChainState (GESB chain-state section, *.gesc) under
/// <output-dir>/checkpoints/ every N supersteps and once more at replicate
/// completion; with resume_from set it seeds replicates from a previous
/// run's checkpoints — finished replicates are re-emitted without running,
/// in-flight ones continue from their (seed, counter) pair, and the final
/// outputs are byte-identical to an uninterrupted run (counter-based
/// randomness; asserted by tests and the CI resume smoke test).
///
/// Streaming: replicate graphs are written from inside the scheduler as
/// each replicate finishes — a RunObserver passed to run_pipeline sees
/// on_superstep / on_checkpoint / on_replicate_done live instead of
/// waiting for the buffered RunReport (the hook the ROADMAP's service
/// front-end will stream over the wire).
#pragma once

#include "graph/edge_list.hpp"
#include "pipeline/config.hpp"
#include "pipeline/report.hpp"

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace gesmc {

class ReplicateExecutor; // pipeline/scheduler.hpp

/// Materializes the initial graph a run starts from (step 1 + 2).  Exposed
/// separately so tools and tests can inspect the input without running
/// chains.
[[nodiscard]] EdgeList materialize_input(const PipelineConfig& config);

/// True iff every replicate finished without error.
[[nodiscard]] bool all_succeeded(const RunReport& report);

/// Execution context for a pipeline run — how the run is hosted and how it
/// can be stopped from the outside.  The defaults reproduce the standalone
/// behavior (private pool, uninterruptible); the sampling service injects
/// its machine-wide executor and a per-job interrupt flag.
struct PipelineExec {
    /// Hosts the replicate bodies.  Null: the run owns a private ThreadPool
    /// of `config.threads` width (the pre-service behavior).
    ReplicateExecutor* executor = nullptr;

    /// Cooperative stop flag (signal handlers, job cancel, daemon drain).
    /// Once set: replicates that have not started are recorded as errors
    /// without running, and running replicates stop at their next
    /// checkpoint boundary — the checkpoint just written makes the run
    /// resumable via resume-from.  Replicates without checkpointing run to
    /// completion (there is no consistent state to stop at).  Null: never
    /// interrupted.
    const std::atomic<bool>* interrupt = nullptr;

    /// Half-open replicate index range [replicate_begin, replicate_end) to
    /// actually run, clamped to [0, config.replicates).  The defaults run
    /// everything.  A partial range (the corpus coordinator's two-phase
    /// early-stop, docs/corpus.md) still derives seeds and output names
    /// from the *absolute* indices — outputs are byte-identical to the same
    /// replicate in a full run — but skips the run-level finalization steps
    /// that only make sense for a complete run (report file, checkpoint
    /// cleanup); the RunReport entries outside the range stay default-
    /// initialized and the caller assembles the merged report.
    std::uint64_t replicate_begin = 0;
    std::uint64_t replicate_end = UINT64_MAX;
};

/// Runs the full pipeline; `log` (may be null) receives human-readable
/// progress lines.  Writes output graphs and the report file as configured,
/// and always returns the in-memory report.  A non-null `observer` streams
/// per-superstep, per-checkpoint and per-replicate events as they happen;
/// under the replicate-parallel policy its callbacks fire concurrently
/// from pool threads (see RunObserver).
RunReport run_pipeline(const PipelineConfig& config, std::ostream* log = nullptr,
                       RunObserver* observer = nullptr);

/// As above, with an injected execution context (see PipelineExec).
RunReport run_pipeline(const PipelineConfig& config, std::ostream* log,
                       RunObserver* observer, const PipelineExec& exec);

/// Removes the run's checkpoint files (.gesc plus adaptive .gesa estimator
/// sidecars) for every replicate of `config`, and the checkpoints/ directory
/// itself once empty; returns how many .gesc files were removed.
/// run_pipeline does this after a successful full-range run unless
/// keep-checkpoints is set; the corpus coordinator calls it when finalizing
/// a two-phase shard (partial-range runs never clean up themselves).
std::uint64_t remove_run_checkpoints(const PipelineConfig& config);

/// True iff `error` is the interruption marker a replicate records when
/// stopped by PipelineExec::interrupt, as opposed to a genuine failure.
[[nodiscard]] bool is_interrupt_error(const std::string& error);

/// True iff `report` records any replicate stopped by PipelineExec::
/// interrupt (error mentions the interruption marker).  Distinguishes "the
/// run was drained/cancelled" from "a replicate genuinely failed".
[[nodiscard]] bool was_interrupted(const RunReport& report);

} // namespace gesmc
