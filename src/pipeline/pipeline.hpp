/// \file pipeline.hpp
/// \brief The batch sampling pipeline: config in, R replicate graphs +
/// JSON report out.
///
/// This is the subsystem that turns the G-ES-MC chains into a service-shaped
/// sampler (ROADMAP north star).  One run:
///
///   1. ingests an input — an edge list (text or GESB binary), a degree
///      sequence, or a built-in generator spec;
///   2. materializes one initial simple graph (degree sequences via
///      Havel–Hakimi or the repaired configuration model);
///   3. runs R independent replicates of the configured chain, each seeded
///      by replicate_seed(master, index), scheduled over one shared
///      ThreadPool under the configured policy (replicate-parallel vs
///      intra-chain parallel, see scheduler.hpp);
///   4. writes one output graph per replicate plus a JSON run report with
///      timings, ChainStats and structural metrics.
///
/// Replicate results are a pure function of (config, seed): the chains use
/// counter-based randomness, so neither the thread count nor the schedule
/// policy changes any output byte — asserted by tests/test_pipeline.cpp.
/// Exception: naive-par-es (thread partition is part of the process, paper
/// §5.1) is only reproducible for a fixed policy and thread count.
///
/// Failure model: a replicate that throws (IO error, invariant violation)
/// records its message in ReplicateReport::error; the remaining replicates
/// still run.  Callers check RunReport::all_succeeded (the CLI exits
/// non-zero, tests assert it).
#pragma once

#include "graph/edge_list.hpp"
#include "pipeline/config.hpp"
#include "pipeline/report.hpp"

#include <iosfwd>

namespace gesmc {

/// Materializes the initial graph a run starts from (step 1 + 2).  Exposed
/// separately so tools and tests can inspect the input without running
/// chains.
[[nodiscard]] EdgeList materialize_input(const PipelineConfig& config);

/// True iff every replicate finished without error.
[[nodiscard]] bool all_succeeded(const RunReport& report);

/// Runs the full pipeline; `log` (may be null) receives human-readable
/// progress lines.  Writes output graphs and the report file as configured,
/// and always returns the in-memory report.
RunReport run_pipeline(const PipelineConfig& config, std::ostream* log = nullptr);

} // namespace gesmc
