/// \file scheduler.hpp
/// \brief Replicate scheduling over a shared ThreadPool.
///
/// The pipeline's central scheduling decision (cf. Bhuiyan et al.: replicate-
/// and intra-chain parallelism must be traded off together) is *where* the
/// machine's P threads go:
///
///   * kReplicates — the R replicates are the parallel work items.  Each
///     chain runs single-threaded; the shared pool's threads pull replicates
///     from a dynamic queue.  Best when R >= P (throughput regime: many
///     short chains, zero synchronization inside a superstep).
///   * kIntraChain — replicates run strictly one after another, and each
///     chain *borrows the shared pool* (ChainConfig::shared_pool) for its
///     parallel supersteps.  Best when R < P or the graph is huge (latency
///     regime: few long chains that each saturate the machine).
///   * kAuto — picks kReplicates iff R >= the pool's thread count.
///
/// Replicate outputs are identical under every policy for the *exact*
/// chains (SeqES, ParES, SeqGlobalES, ParGlobalES, AdjListES): they draw
/// all randomness from counter-based streams keyed by their (derived) seed,
/// so results depend neither on the thread count nor on execution order.
/// The one exception is NaiveParES, whose partition onto threads is part of
/// the process (paper §5.1) — its outputs change with the chain's thread
/// count, and hence with the policy.  run_pipeline logs a warning for it.
#pragma once

#include "pipeline/config.hpp"

#include <cstdint>
#include <functional>

namespace gesmc {

class ThreadPool;

/// Execution context handed to each replicate body.
struct ReplicateSlot {
    std::uint64_t index;      ///< replicate index in [0, R)
    unsigned chain_threads;   ///< threads the chain may use
    ThreadPool* shared_pool;  ///< pool to borrow (null: chain owns its pool)
};

/// Resolves kAuto against the actual replicate count and pool width.
[[nodiscard]] SchedulePolicy resolve_policy(SchedulePolicy policy, std::uint64_t replicates,
                                            unsigned pool_threads) noexcept;

/// Runs `fn` once per replicate index under the resolved policy.  Under
/// kReplicates, `fn` is invoked concurrently from pool threads and must be
/// thread-safe across distinct indices; under kIntraChain it runs on the
/// calling thread.  `fn` must not throw — exceptions cannot cross the pool
/// boundary; catch and record failures per replicate instead.
///
/// Streaming contract: each body completes its replicate end-to-end
/// (run/resume, checkpoints, output graph, RunObserver::on_replicate_done)
/// before returning — so replicate results reach disk and observers as
/// they finish, never buffered behind the slowest replicate of the run.
void run_replicates(ThreadPool& pool, std::uint64_t replicates, SchedulePolicy policy,
                    const std::function<void(const ReplicateSlot&)>& fn);

/// Hosts the replicate bodies of a pipeline run.  The default
/// implementation (PoolExecutor) drives one caller-owned ThreadPool exactly
/// like run_replicates; the sampling service substitutes a machine-wide
/// executor (service/job_manager.hpp SharedExecutor) that multiplexes the
/// replicates of *many concurrent jobs* over one pool while preserving the
/// per-job SchedulePolicy.  Implementations inherit run_replicates'
/// contract: bodies must not throw, and each body completes its replicate
/// end-to-end before returning.
class ReplicateExecutor {
public:
    virtual ~ReplicateExecutor() = default;

    /// Pool width: resolves SchedulePolicy::kAuto and is reported as
    /// RunReport::threads.
    [[nodiscard]] virtual unsigned threads() const noexcept = 0;

    /// Runs `fn` once per replicate index in [0, replicates) under the
    /// resolved policy; blocks until every body returned.
    virtual void run(std::uint64_t replicates, SchedulePolicy policy,
                     const std::function<void(const ReplicateSlot&)>& fn) = 0;
};

/// ReplicateExecutor over one caller-owned ThreadPool — the single-run
/// (non-service) path; run_pipeline builds one around a private pool when
/// no executor is injected.
class PoolExecutor final : public ReplicateExecutor {
public:
    explicit PoolExecutor(ThreadPool& pool) noexcept : pool_(&pool) {}

    [[nodiscard]] unsigned threads() const noexcept override;

    void run(std::uint64_t replicates, SchedulePolicy policy,
             const std::function<void(const ReplicateSlot&)>& fn) override {
        run_replicates(*pool_, replicates, policy, fn);
    }

private:
    ThreadPool* pool_;
};

} // namespace gesmc
