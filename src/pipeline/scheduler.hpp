/// \file scheduler.hpp
/// \brief Replicate scheduling over a machine-level thread budget.
///
/// The pipeline's central scheduling decision (cf. Bhuiyan et al.: replicate-
/// and intra-chain parallelism must be traded off together) is *where* the
/// machine's budget of P threads goes.  Every run resolves to a (K, T) point
/// — K replicates computing concurrently, each chain on a leased sub-pool of
/// width T, with K·T ≤ P (parallel/pool_lease.hpp):
///
///   * kReplicates — T = 1, K = min(P, R).  The R replicates are the
///     parallel work items; each chain runs single-threaded.  Best when
///     R >= P (throughput regime: many short chains, zero synchronization
///     inside a superstep).
///   * kIntraChain — K = 1, T = P.  Replicates run strictly one after
///     another, each chain borrowing a whole-budget pool for its parallel
///     supersteps.  Best when R is tiny or the graph is huge (latency
///     regime: few long chains that each saturate the machine).
///   * kHybrid — the middle of the tradeoff: K = ⌊P/T⌋ replicates at once
///     with T threads each.  T comes from `chain-threads` (or is derived as
///     ⌊P / min(R, P)⌋), K is optionally capped by `max-concurrent`.
///   * kAuto — budget-aware: a pinned `chain-threads` selects the policy
///     that realizes it (T = 1 → kReplicates, T >= P → kIntraChain, else
///     kHybrid with K = ⌊P/T⌋); unpinned, it picks kReplicates iff R >= P.
///
/// Replicate outputs are identical under every (K, T) point for the *exact*
/// chains (SeqES, ParES, SeqGlobalES, ParGlobalES, AdjListES): they draw
/// all randomness from counter-based streams keyed by their (derived) seed,
/// so results depend neither on the thread count nor on execution order.
/// The one exception is NaiveParES, whose partition onto threads is part of
/// the process (paper §5.1) — its outputs change with the chain's thread
/// count T, and hence with the policy.  run_pipeline logs a warning for it.
#pragma once

#include "pipeline/config.hpp"

#include <cstdint>
#include <functional>

namespace gesmc {

class ThreadBudget;
class ThreadPool;

/// What a run asks the executor for — the raw config knobs, resolved
/// against the executor's budget width at run time.
struct ScheduleRequest {
    SchedulePolicy policy = SchedulePolicy::kAuto;
    unsigned chain_threads = 0;   ///< T; 0 = derive from the policy
    unsigned max_concurrent = 0;  ///< K cap; 0 = whatever the budget admits
};

/// The (K, T) point a request resolves to on a budget of P threads.
struct ResolvedSchedule {
    SchedulePolicy policy = SchedulePolicy::kReplicates; ///< never kAuto
    unsigned chain_threads = 1;   ///< T: threads leased per chain
    unsigned max_concurrent = 1;  ///< K: replicates computing at once
};

/// Resolves `request` against `replicates` and a budget of `budget`
/// threads.  Guarantees 1 <= T <= max(1, budget) and
/// K * T <= max(1, budget); K is additionally clamped to `replicates`.
[[nodiscard]] ResolvedSchedule resolve_schedule(const ScheduleRequest& request,
                                                std::uint64_t replicates,
                                                unsigned budget) noexcept;

/// Policy-only shorthand (no pinned chain-threads): what kAuto resolves to
/// for R replicates on a budget of `pool_threads`.
[[nodiscard]] SchedulePolicy resolve_policy(SchedulePolicy policy, std::uint64_t replicates,
                                            unsigned pool_threads) noexcept;

/// Execution context handed to each replicate body.  `shared_pool` is the
/// replicate's *leased* pool: a disjoint worker team of `chain_threads`
/// threads carved out of the run's budget (null when chain_threads == 1 —
/// a single-threaded chain needs no pool).
struct ReplicateSlot {
    std::uint64_t index;      ///< replicate index in [0, R)
    unsigned chain_threads;   ///< T: threads the chain may use
    ThreadPool* shared_pool;  ///< leased pool to borrow (null: single-threaded)
};

/// Hosts the replicate bodies of a pipeline run.  The default
/// implementation (PoolExecutor) leases sub-pools out of one caller-owned
/// ThreadBudget; the sampling service substitutes a machine-wide executor
/// (service/job_manager.hpp SharedExecutor) that multiplexes the replicates
/// of *many concurrent jobs* over one budget while preserving each job's
/// resolved (K, T).  Contract: bodies must not throw — exceptions cannot
/// cross thread boundaries; catch and record failures per replicate — and
/// each body completes its replicate end-to-end (run/resume, checkpoints,
/// output graph, RunObserver::on_replicate_done) before returning, so
/// replicate results reach disk and observers as they finish, never
/// buffered behind the slowest replicate of the run.
class ReplicateExecutor {
public:
    virtual ~ReplicateExecutor() = default;

    /// Budget width P: what schedules resolve against, reported as
    /// RunReport::threads.
    [[nodiscard]] virtual unsigned threads() const noexcept = 0;

    /// Runs `fn` once per replicate index in [0, replicates) under the
    /// resolved schedule; blocks until every body returned.  Bodies of
    /// concurrent replicates are invoked from different threads and must be
    /// thread-safe across distinct indices; under K = 1 they run on the
    /// calling thread.
    virtual void run(std::uint64_t replicates, const ScheduleRequest& request,
                     const std::function<void(const ReplicateSlot&)>& fn) = 0;

    /// The (K, T) point `run` would execute — resolved against threads().
    [[nodiscard]] ResolvedSchedule resolve(std::uint64_t replicates,
                                           const ScheduleRequest& request) const noexcept {
        return resolve_schedule(request, replicates, threads());
    }
};

/// ReplicateExecutor over one caller-owned ThreadBudget — the single-run
/// (non-service) path; run_pipeline builds one around a private budget when
/// no executor is injected.  K worker threads (the caller participates)
/// each hold a width-T lease and pull replicate indices from a shared
/// dynamic queue: replicate runtimes vary (rejections, IO), so static
/// assignment would leave leases idle at the tail.
class PoolExecutor final : public ReplicateExecutor {
public:
    explicit PoolExecutor(ThreadBudget& budget) noexcept : budget_(&budget) {}

    [[nodiscard]] unsigned threads() const noexcept override;

    void run(std::uint64_t replicates, const ScheduleRequest& request,
             const std::function<void(const ReplicateSlot&)>& fn) override;

private:
    ThreadBudget* budget_;
};

} // namespace gesmc
