#include "analysis/gauges.hpp"

#include "analysis/autocorrelation.hpp"
#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gesmc {

std::int64_t fixed_point_milli(double value) {
    if (!std::isfinite(value)) return 0;
    return static_cast<std::int64_t>(std::llround(value * 1000.0));
}

std::vector<double> replicate_z_scores(const RunReport& report) {
    std::vector<double> z(report.replicates.size(), 0.0);
    double sum = 0, count = 0;
    for (const ReplicateReport& r : report.replicates) {
        if (!r.has_metrics || !r.error.empty()) continue;
        sum += static_cast<double>(r.triangles);
        count += 1;
    }
    if (count < 2) return z;
    const double mean = sum / count;
    double var = 0;
    for (const ReplicateReport& r : report.replicates) {
        if (!r.has_metrics || !r.error.empty()) continue;
        const double d = static_cast<double>(r.triangles) - mean;
        var += d * d;
    }
    const double stddev = std::sqrt(var / count);
    if (stddev <= 0) return z;
    for (std::size_t i = 0; i < report.replicates.size(); ++i) {
        const ReplicateReport& r = report.replicates[i];
        if (!r.has_metrics || !r.error.empty()) continue;
        z[i] = (static_cast<double>(r.triangles) - mean) / stddev;
    }
    return z;
}

void publish_corpus_z_gauges(const RunReport& report) {
    if (!obs::metrics_enabled()) return;
    const std::vector<double> z = replicate_z_scores(report);
    double max_abs = 0, last = 0;
    std::uint64_t scored = 0;
    for (std::size_t i = 0; i < z.size(); ++i) {
        if (!report.replicates[i].has_metrics || !report.replicates[i].error.empty()) {
            continue;
        }
        ++scored;
        last = z[i];
        if (std::fabs(z[i]) > std::fabs(max_abs)) max_abs = z[i];
    }
    if (scored == 0) return;
    struct ZGauges {
        obs::Gauge& replicates =
            obs::MetricsRegistry::instance().gauge("analysis.corpus.z_replicates");
        obs::Gauge& max_abs =
            obs::MetricsRegistry::instance().gauge("analysis.corpus.max_abs_z_milli");
        obs::Gauge& last =
            obs::MetricsRegistry::instance().gauge("analysis.corpus.last_z_milli");
    };
    static ZGauges& gauges = *new ZGauges();
    gauges.replicates.set(static_cast<std::int64_t>(scored));
    gauges.max_abs.set(fixed_point_milli(max_abs));
    gauges.last.set(fixed_point_milli(last));
}

MixingGaugeObserver::MixingGaugeObserver(std::uint64_t replicates,
                                         std::uint64_t supersteps,
                                         RunObserver* inner)
    : slots_(replicates),
      max_thinning_(static_cast<std::uint32_t>(
          std::clamp<std::uint64_t>(supersteps / 4, 1, 64))),
      inner_(inner) {}

MixingGaugeObserver::~MixingGaugeObserver() = default;

void MixingGaugeObserver::on_superstep(std::uint64_t replicate, const Chain& chain) {
    if (replicate < slots_.size()) {
        std::unique_ptr<ThinningAutocorrelation>& slot = slots_[replicate];
        if (slot == nullptr) {
            // First observed superstep: its state is the tracker's baseline
            // (a one-superstep offset from the true start — irrelevant for a
            // live mixing estimate).
            slot = std::make_unique<ThinningAutocorrelation>(
                chain, default_thinning_values(max_thinning_),
                ThinningAutocorrelation::Track::kInitialEdges);
        } else {
            slot->observe(chain);
        }
    }
    if (inner_ != nullptr) inner_->on_superstep(replicate, chain);
}

void MixingGaugeObserver::on_checkpoint(std::uint64_t replicate,
                                        const ChainState& state,
                                        const std::string& path) {
    if (inner_ != nullptr) inner_->on_checkpoint(replicate, state, path);
}

void MixingGaugeObserver::on_replicate_done(const ReplicateReport& report) {
    std::unique_ptr<ThinningAutocorrelation> tracker;
    if (report.index < slots_.size()) tracker = std::move(slots_[report.index]);
    if (report.error.empty() && obs::metrics_enabled()) {
        struct MixingGauges {
            obs::Gauge& non_independent = obs::MetricsRegistry::instance().gauge(
                "analysis.mixing.non_independent_milli");
            obs::Gauge& thinning =
                obs::MetricsRegistry::instance().gauge("analysis.mixing.thinning");
            obs::Gauge& triangles = obs::MetricsRegistry::instance().gauge(
                "analysis.replicate.triangles");
            obs::Gauge& clustering = obs::MetricsRegistry::instance().gauge(
                "analysis.replicate.clustering_milli");
            obs::Gauge& assortativity = obs::MetricsRegistry::instance().gauge(
                "analysis.replicate.assortativity_milli");
        };
        static MixingGauges& gauges = *new MixingGauges();
        if (tracker != nullptr && tracker->supersteps() > 0) {
            const std::vector<double> fractions = tracker->non_independent_fractions();
            gauges.non_independent.set(fixed_point_milli(fractions.back()));
            gauges.thinning.set(
                static_cast<std::int64_t>(tracker->thinning().back()));
        }
        if (report.has_metrics) {
            gauges.triangles.set(static_cast<std::int64_t>(report.triangles));
            gauges.clustering.set(fixed_point_milli(report.global_clustering));
            gauges.assortativity.set(fixed_point_milli(report.assortativity));
        }
    }
    if (inner_ != nullptr) inner_->on_replicate_done(report);
}

} // namespace gesmc
