/// \file gauges.hpp
/// \brief Analysis-layer telemetry: mixing and proxy-metric gauges.
///
/// Bridges the analysis subsystem into the live metrics registry so the
/// telemetry sampler (obs/timeseries.hpp), the daemon's `watch` stream and
/// the Prometheus exposition can surface *statistical* health next to the
/// operational counters:
///
///   * MixingGaugeObserver wraps a pipeline RunObserver and feeds each
///     replicate's per-superstep states into a streaming
///     ThinningAutocorrelation tracker; when the replicate finishes it
///     publishes the non-independent-edge fraction (the paper's §6.1
///     stopping criterion) plus the replicate's proxy metrics as gauges.
///   * replicate_z_scores / publish_corpus_z_gauges turn one corpus
///     shard's replicate triangle counts into z-scores against the shard's
///     own replicate distribution — the Milo-style "is this sample an
///     outlier among its siblings" signal — and publish the extremes.
///
/// Gauges are last-writer-wins by design: with replicates (or corpus
/// graphs) finishing concurrently, each gauge tracks the most recently
/// completed unit — a live-dashboard signal, not an archival record (the
/// JSON reports remain the archival path).  Fractions travel as fixed-point
/// milli units (value x 1000, rounded) because gauges are integral; signed
/// values (assortativity, z-scores) survive the trip — the JSON and
/// Prometheus emitters both render negative gauges faithfully.
#pragma once

#include "core/chain.hpp"
#include "pipeline/report.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace gesmc {

class ThinningAutocorrelation; // analysis/autocorrelation.hpp

/// `value` x 1000 rounded to the nearest integer — the fixed-point spelling
/// fractional analysis results use as gauges.  Non-finite values map to 0.
[[nodiscard]] std::int64_t fixed_point_milli(double value);

/// Per-replicate z-scores of the triangle count against the report's own
/// replicate distribution (population stddev).  One entry per replicate,
/// aligned with report.replicates; entries without metrics — and every
/// entry when fewer than two replicates have metrics or the spread is
/// degenerate — are 0.
[[nodiscard]] std::vector<double> replicate_z_scores(const RunReport& report);

/// Publishes one finished shard's replicate z-score extremes as gauges
/// (analysis.corpus.z_replicates, analysis.corpus.max_abs_z_milli,
/// analysis.corpus.last_z_milli).  No-op when metrics are disabled or the
/// report carries no structural metrics.
void publish_corpus_z_gauges(const RunReport& report);

/// RunObserver decorator publishing per-replicate mixing telemetry.
///
/// Forwards every callback to `inner` (may be null) unchanged.  On top of
/// that it maintains one streaming ThinningAutocorrelation tracker per
/// replicate — created at the replicate's first observed superstep, fed on
/// every subsequent one, and collapsed into gauges when the replicate
/// finishes:
///
///   analysis.mixing.non_independent_milli   fraction at the largest
///                                           thinning value, x1000
///   analysis.mixing.thinning                that thinning value k
///   analysis.replicate.triangles            last finished replicate's
///   analysis.replicate.clustering_milli     proxy metrics (when the run
///   analysis.replicate.assortativity_milli  computes them)
///
/// Thread-safety: callbacks for *different* replicates fire concurrently
/// (RunObserver contract), but each replicate's callbacks are sequential on
/// its own thread — so per-replicate slots need no lock, and gauge stores
/// are atomic.  Memory: one tracker is Theta(m x |thinning|) while its
/// replicate runs (freed at on_replicate_done); gate construction on
/// config.metrics, the same opt-in that buys the O(m^1.5) proxy pass.
class MixingGaugeObserver final : public RunObserver {
public:
    /// `supersteps` bounds the thinning ladder (max k = supersteps / 4,
    /// clamped to [1, 64]) so short runs still observe transitions at the
    /// largest thinning value.
    MixingGaugeObserver(std::uint64_t replicates, std::uint64_t supersteps,
                        RunObserver* inner);
    ~MixingGaugeObserver() override;

    void on_superstep(std::uint64_t replicate, const Chain& chain) override;
    void on_checkpoint(std::uint64_t replicate, const ChainState& state,
                       const std::string& path) override;
    void on_replicate_done(const ReplicateReport& report) override;

private:
    /// Tracker slots, one per replicate index; each slot is touched only by
    /// the thread running that replicate (no lock — see class comment).
    std::vector<std::unique_ptr<ThinningAutocorrelation>> slots_;
    std::uint32_t max_thinning_;
    RunObserver* inner_;
};

} // namespace gesmc
