#include "analysis/proxy_metrics.hpp"

#include "graph/adjacency.hpp"
#include "graph/metrics.hpp"

namespace gesmc {

ProxySample measure_proxies(const Chain& chain, std::uint64_t superstep) {
    const EdgeList& g = chain.graph();
    const Adjacency adj(g);
    ProxySample s;
    s.superstep = superstep;
    s.triangles = triangle_count(adj);
    s.global_clustering = global_clustering(adj);
    s.assortativity = degree_assortativity(g);
    return s;
}

std::vector<ProxySample> proxy_series(Chain& chain, std::uint64_t supersteps,
                                      std::uint64_t stride) {
    std::vector<ProxySample> out;
    out.push_back(measure_proxies(chain, 0));
    for (std::uint64_t step = 1; step <= supersteps; ++step) {
        chain.run_supersteps(1);
        if (step % stride == 0 || step == supersteps) {
            out.push_back(measure_proxies(chain, step));
        }
    }
    return out;
}

} // namespace gesmc
