/// \file convergence.hpp
/// \brief Experiment drivers for the Figure 2/3 mixing comparisons.
///
/// Wires chains and the autocorrelation tracker together: run a chain for
/// max(T) * samples supersteps, aggregate mean / stddev of the
/// non-independent fraction over repeated runs (Fig. 2), and extract the
/// first thinning value below a threshold tau (Fig. 3).
#pragma once

#include "analysis/autocorrelation.hpp"
#include "core/chain.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace gesmc {

struct MixingCurve {
    std::vector<std::uint32_t> thinning; ///< x-axis (supersteps between samples)
    std::vector<double> mean;            ///< mean non-independent fraction
    std::vector<double> stddev;          ///< across runs
    std::uint64_t runs = 0;
};

struct MixingExperimentConfig {
    std::uint32_t max_thinning = 32;
    /// Transitions observed at the largest thinning value.
    std::uint32_t samples_at_max = 30;
    std::uint32_t runs = 3;
    std::uint64_t base_seed = 1;
    ThinningAutocorrelation::Track track = ThinningAutocorrelation::Track::kInitialEdges;
};

/// Runs `runs` independent chains of the given algorithm from `initial` and
/// returns the aggregated non-independence curve.
MixingCurve mixing_curve(ChainAlgorithm algo, const EdgeList& initial,
                         const MixingExperimentConfig& config);

/// First thinning value whose mean fraction drops below tau, if any.
std::optional<std::uint32_t> first_thinning_below(const MixingCurve& curve, double tau);

} // namespace gesmc
