#include "analysis/convergence.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

#include <cmath>

namespace gesmc {

MixingCurve mixing_curve(ChainAlgorithm algo, const EdgeList& initial,
                         const MixingExperimentConfig& config) {
    GESMC_CHECK(config.runs >= 1, "need at least one run");
    const auto thinning = default_thinning_values(config.max_thinning);
    const std::uint64_t supersteps =
        static_cast<std::uint64_t>(config.max_thinning) * config.samples_at_max;

    MixingCurve curve;
    curve.thinning = thinning;
    curve.runs = config.runs;
    std::vector<double> sum(thinning.size(), 0);
    std::vector<double> sum_sq(thinning.size(), 0);

    for (std::uint32_t run = 0; run < config.runs; ++run) {
        ChainConfig chain_config;
        chain_config.seed = mix64(config.base_seed, run);
        auto chain = make_chain(algo, initial, chain_config);
        ThinningAutocorrelation tracker(*chain, thinning, config.track);
        for (std::uint64_t step = 0; step < supersteps; ++step) {
            chain->run_supersteps(1);
            tracker.observe(*chain);
        }
        const auto fractions = tracker.non_independent_fractions();
        for (std::size_t ki = 0; ki < thinning.size(); ++ki) {
            sum[ki] += fractions[ki];
            sum_sq[ki] += fractions[ki] * fractions[ki];
        }
    }

    curve.mean.resize(thinning.size());
    curve.stddev.resize(thinning.size());
    for (std::size_t ki = 0; ki < thinning.size(); ++ki) {
        const double mean = sum[ki] / config.runs;
        curve.mean[ki] = mean;
        const double var = std::max(0.0, sum_sq[ki] / config.runs - mean * mean);
        curve.stddev[ki] = std::sqrt(var);
    }
    return curve;
}

std::optional<std::uint32_t> first_thinning_below(const MixingCurve& curve, double tau) {
    for (std::size_t ki = 0; ki < curve.thinning.size(); ++ki) {
        if (curve.mean[ki] < tau) return curve.thinning[ki];
    }
    return std::nullopt;
}

} // namespace gesmc
