/// \file proxy_metrics.hpp
/// \brief Aggregate-metric time series along a chain run (paper §6.1).
///
/// The paper lists assortativity, clustering, and triangle count as common
/// — but less sensitive — mixing proxies.  This tracker records them per
/// superstep so examples and tests can contrast their fast apparent
/// convergence with the stricter autocorrelation criterion.
#pragma once

#include "core/chain.hpp"

#include <vector>

namespace gesmc {

struct ProxySample {
    std::uint64_t superstep = 0;
    std::uint64_t triangles = 0;
    double global_clustering = 0;
    double assortativity = 0;
};

/// Computes one sample from the chain's current graph (O(m^1.5) worst case).
ProxySample measure_proxies(const Chain& chain, std::uint64_t superstep);

/// Runs `chain` for `supersteps`, sampling proxies every `stride` steps
/// (including superstep 0).
std::vector<ProxySample> proxy_series(Chain& chain, std::uint64_t supersteps,
                                      std::uint64_t stride = 1);

} // namespace gesmc
