#include "analysis/ess.hpp"

#include "obs/metrics.hpp"
#include "util/binio.hpp"
#include "util/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

namespace gesmc {

namespace {

/// Sidecar preamble: same "GESA" family as the embedded autocorrelation
/// section, tag 'E' (estimator), its own version byte.
constexpr char kEssMagic[4] = {'G', 'E', 'S', 'A'};
constexpr char kEssTag = 'E';
constexpr int kEssVersion = 1;

/// All analysis.ess.* metrics.  Counters count verdict evaluations and
/// fired stops; the gauges expose the latest estimates in fixed-point
/// milli units (gauges are integers).
struct EssMetrics {
    obs::Counter& checks =
        obs::MetricsRegistry::instance().counter("analysis.ess.checks");
    obs::Counter& stops =
        obs::MetricsRegistry::instance().counter("analysis.ess.stops");
    obs::Gauge& ess_milli =
        obs::MetricsRegistry::instance().gauge("analysis.ess.last_milli");
    obs::Gauge& tau_milli =
        obs::MetricsRegistry::instance().gauge("analysis.ess.tau_milli");
    obs::Gauge& frac_milli = obs::MetricsRegistry::instance().gauge(
        "analysis.ess.non_independent_milli");
};

EssMetrics& ess_metrics() {
    static EssMetrics& m = *new EssMetrics();
    return m;
}

std::int64_t to_milli(double v) {
    if (!std::isfinite(v)) return 0;
    return static_cast<std::int64_t>(v * 1000.0);
}

} // namespace

bool operator==(const AdaptiveStopConfig& a, const AdaptiveStopConfig& b) {
    return a.ess_target == b.ess_target && a.mixing_tau == b.mixing_tau &&
           a.min_supersteps == b.min_supersteps &&
           a.max_supersteps == b.max_supersteps && a.check_every == b.check_every &&
           a.confirm_window == b.confirm_window;
}

// ---------------------------------------------------- ScalarAutocorrelation

void ScalarAutocorrelation::add(double x) noexcept {
    if (n_ == 0) {
        first_ = x;
    } else {
        cross_ += x * last_;
    }
    sum_ += x;
    sumsq_ += x * x;
    last_ = x;
    ++n_;
}

double ScalarAutocorrelation::rho() const noexcept {
    if (n_ < 3) return 0.0;
    const double n = static_cast<double>(n_);
    const double mean = sum_ / n;
    const double denom = sumsq_ - n * mean * mean;
    // Constant (or numerically constant) series: no lag information.
    if (denom <= 1e-12 * std::max(1.0, sumsq_)) return 0.0;
    // sum_{t>=2} (x_t - mean)(x_{t-1} - mean), expanded so one pass over
    // the stream suffices: cross_ minus the mean-corrections of the two
    // (n-1)-term marginal sums.
    const double num = cross_ - mean * (sum_ - first_) - mean * (sum_ - last_) +
                       (n - 1.0) * mean * mean;
    return std::clamp(num / denom, -0.999, 0.999);
}

double ScalarAutocorrelation::tau() const noexcept {
    const double r = rho();
    return std::max(1.0, (1.0 + r) / (1.0 - r));
}

double ScalarAutocorrelation::ess() const noexcept {
    if (n_ < 3) return 0.0;
    const double n = static_cast<double>(n_);
    const double mean = sum_ / n;
    const double denom = sumsq_ - n * mean * mean;
    // A constant series is one effective observation, not n independent
    // ones — without this, a frozen chain would look perfectly mixed.
    if (denom <= 1e-12 * std::max(1.0, sumsq_)) return 1.0;
    return n / tau();
}

void ScalarAutocorrelation::save(std::ostream& os) const {
    binio::write_varint(os, n_);
    binio::write_double_le(os, sum_);
    binio::write_double_le(os, sumsq_);
    binio::write_double_le(os, cross_);
    binio::write_double_le(os, first_);
    binio::write_double_le(os, last_);
}

ScalarAutocorrelation ScalarAutocorrelation::restore(std::istream& is) {
    static constexpr const char* kWhat = "estimator scalar state";
    ScalarAutocorrelation out;
    out.n_ = binio::read_varint(is, kWhat);
    out.sum_ = binio::read_double_le(is, kWhat);
    out.sumsq_ = binio::read_double_le(is, kWhat);
    out.cross_ = binio::read_double_le(is, kWhat);
    out.first_ = binio::read_double_le(is, kWhat);
    out.last_ = binio::read_double_le(is, kWhat);
    return out;
}

// ----------------------------------------------------------- EssEstimator

std::uint32_t adaptive_max_thinning(std::uint64_t max_supersteps) {
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(max_supersteps / 4, 1, 64));
}

EssEstimator::EssEstimator(const Chain& chain, const AdaptiveStopConfig& config,
                           std::uint32_t max_thinning)
    : config_(config),
      autocorr_(chain, default_thinning_values(max_thinning),
                ThinningAutocorrelation::Track::kInitialEdges) {
    // X_0 = |E(G_0)| anchors the overlap series at the initial graph.
    double overlap = 0;
    for (const edge_key_t key : autocorr_.tracked()) {
        if (chain.has_edge(key)) overlap += 1.0;
    }
    overlap_.add(overlap);
}

EssEstimator::EssEstimator(const AdaptiveStopConfig& config,
                           ThinningAutocorrelation autocorr)
    : config_(config), autocorr_(std::move(autocorr)) {}

void EssEstimator::observe(const Chain& chain) {
    autocorr_.observe(chain);
    double overlap = 0;
    for (const edge_key_t key : autocorr_.tracked()) {
        if (chain.has_edge(key)) overlap += 1.0;
    }
    overlap_.add(overlap);
    const std::uint64_t s = autocorr_.supersteps();
    if (stopped()) return;
    if (s >= config_.min_supersteps && config_.check_every > 0 &&
        s % config_.check_every == 0) {
        check(s);
    }
}

std::optional<std::size_t> EssEstimator::deepest_evaluable(std::uint64_t s) const {
    const std::vector<std::uint32_t>& thinning = autocorr_.thinning();
    for (std::size_t i = thinning.size(); i-- > 0;) {
        // One transition lands per retained observation (prev is seeded at
        // superstep 0), so rung k has floor(s / k) transitions at step s.
        if (s / thinning[i] >= 3) return i;
    }
    return std::nullopt;
}

double EssEstimator::non_independent_fraction() const {
    const std::optional<std::size_t> ki = deepest_evaluable(autocorr_.supersteps());
    if (!ki.has_value()) return 1.0;
    return autocorr_.non_independent_fraction(*ki);
}

void EssEstimator::check(std::uint64_t s) {
    const double ess_now = overlap_.ess();
    const std::optional<std::size_t> ki = deepest_evaluable(s);
    const double frac =
        ki.has_value() ? autocorr_.non_independent_fraction(*ki) : 1.0;
    const bool pass = ess_now >= config_.ess_target && frac <= config_.mixing_tau;
    streak_ = pass ? streak_ + 1 : 0;
    if (pass && streak_ >= config_.confirm_window) stop_superstep_ = s;
    if (obs::metrics_enabled()) {
        EssMetrics& m = ess_metrics();
        m.checks.add(1);
        m.ess_milli.set(to_milli(ess_now));
        m.tau_milli.set(to_milli(overlap_.tau()));
        m.frac_milli.set(to_milli(frac));
        if (stop_superstep_.has_value() && *stop_superstep_ == s) m.stops.add(1);
    }
}

void EssEstimator::save(std::ostream& os) const {
    os.write(kEssMagic, sizeof(kEssMagic));
    os.put(kEssTag);
    os.put(static_cast<char>(kEssVersion));
    // Config echo: a sidecar is only valid against the knobs it was
    // recorded under (restore() enforces the match).
    binio::write_double_le(os, config_.ess_target);
    binio::write_double_le(os, config_.mixing_tau);
    binio::write_varint(os, config_.min_supersteps);
    binio::write_varint(os, config_.max_supersteps);
    binio::write_varint(os, config_.check_every);
    binio::write_varint(os, config_.confirm_window);
    binio::write_varint(os, streak_);
    binio::write_varint(os, stop_superstep_.has_value() ? 1 : 0);
    if (stop_superstep_.has_value()) binio::write_varint(os, *stop_superstep_);
    overlap_.save(os);
    autocorr_.save(os);
    GESMC_CHECK(os.good(), "estimator state write failed");
}

EssEstimator EssEstimator::restore(std::istream& is,
                                   const AdaptiveStopConfig& config) {
    static constexpr const char* kWhat = "estimator state";
    char preamble[6] = {};
    is.read(preamble, sizeof(preamble));
    GESMC_CHECK(is.gcount() == sizeof(preamble) &&
                    std::memcmp(preamble, kEssMagic, 4) == 0 &&
                    preamble[4] == kEssTag,
                "not a serialized estimator state");
    GESMC_CHECK(preamble[5] == kEssVersion, "unsupported estimator state version");
    AdaptiveStopConfig echoed;
    echoed.ess_target = binio::read_double_le(is, kWhat);
    echoed.mixing_tau = binio::read_double_le(is, kWhat);
    echoed.min_supersteps = binio::read_varint(is, kWhat);
    echoed.max_supersteps = binio::read_varint(is, kWhat);
    echoed.check_every = binio::read_varint(is, kWhat);
    const std::uint64_t confirm = binio::read_varint(is, kWhat);
    GESMC_CHECK(confirm <= UINT32_MAX, "estimator state: bad confirm window");
    echoed.confirm_window = static_cast<std::uint32_t>(confirm);
    GESMC_CHECK(echoed == config,
                "estimator state was recorded under a different adaptive config");
    const std::uint64_t streak = binio::read_varint(is, kWhat);
    GESMC_CHECK(streak <= UINT32_MAX, "estimator state: bad streak");
    const std::uint64_t has_stop = binio::read_varint(is, kWhat);
    GESMC_CHECK(has_stop <= 1, "estimator state: bad stop flag");
    std::optional<std::uint64_t> stop;
    if (has_stop == 1) stop = binio::read_varint(is, kWhat);
    ScalarAutocorrelation overlap = ScalarAutocorrelation::restore(is);
    EssEstimator out(config, ThinningAutocorrelation::restore(is));
    out.streak_ = static_cast<std::uint32_t>(streak);
    out.stop_superstep_ = stop;
    out.overlap_ = overlap;
    return out;
}

} // namespace gesmc
