/// \file ess.hpp
/// \brief Streaming convergence estimator for adaptive superstep budgets.
///
/// The paper's evaluation (and the fixed `supersteps` config) runs every
/// replicate for a constant budget — the "10x supersteps" folklore that
/// Stauffer & Barbosa (cs/0512105) spend a paper questioning.  This module
/// closes the loop: an EssEstimator watches a single replicate's superstep
/// stream (through the ordinary RunObserver hook — no new chain API) and
/// emits a deterministic *stop verdict* once the chain looks mixed.
///
/// Two signals, both pure functions of the observed graph sequence:
///
///  * The Ray–Pinar–Seshadhri thinned G2/BIC test (ThinningAutocorrelation)
///    gives the fraction of tracked edges whose series still looks
///    first-order Markov — "non-independent".  The verdict reads the
///    fraction at the *largest thinning value with >= 3 retained samples*:
///    early in the run the deeper ladder rungs have no evidence yet and
///    (by design of bic_prefers_independent) count every edge as
///    non-independent, which would make early stops impossible.
///
///  * An effective-sample-size proxy: the scalar overlap series
///    X_t = |E(G_t) ∩ E(G_0)| summarised by a streaming exact lag-1
///    autocorrelation, the AR(1) integrated autocorrelation time
///    tau = (1 + rho) / (1 - rho), and ESS = n / tau.
///
/// Determinism contract: the verdict depends only on (initial graph, the
/// superstep-indexed graph sequence, AdaptiveStopConfig).  It is evaluated
/// only at absolute check steps (s >= min_supersteps and
/// s % check_every == 0), so chunk sizes, checkpoint cadence, scheduling
/// policy and resume points can never move a stop.  Estimator state
/// serializes bit-exactly (save/restore) so a killed run resumes onto the
/// identical trajectory.
#pragma once

#include "analysis/autocorrelation.hpp"
#include "core/chain.hpp"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace gesmc {

/// Knobs of the adaptive stopping rule (pipeline config keys of the same
/// names, see docs/adaptive.md).
struct AdaptiveStopConfig {
    double ess_target = 32.0;      ///< stop once ESS >= this ...
    double mixing_tau = 0.2;       ///< ... and non-independent fraction <= this
    std::uint64_t min_supersteps = 8;    ///< never stop before this many
    std::uint64_t max_supersteps = 200;  ///< hard budget (fallback stop)
    std::uint64_t check_every = 2;       ///< verdict cadence (absolute steps)
    std::uint32_t confirm_window = 3;    ///< consecutive passing checks required
};

bool operator==(const AdaptiveStopConfig& a, const AdaptiveStopConfig& b);

/// Streaming *exact* lag-1 autocorrelation of a scalar series, O(1) state.
/// Feeds the AR(1) ESS proxy; public so tests can drive it with synthetic
/// AR(1) series and check the estimate against the closed form.
class ScalarAutocorrelation {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

    /// Lag-1 sample autocorrelation (0 when < 3 samples or the series is
    /// constant — a constant series carries no mixing evidence).
    [[nodiscard]] double rho() const noexcept;

    /// AR(1) integrated autocorrelation time tau = (1+rho)/(1-rho),
    /// clamped to >= 1.
    [[nodiscard]] double tau() const noexcept;

    /// ESS = n / tau; 0 until 3 samples exist, and a constant series
    /// reports ESS = 1 (one effective observation, not n).
    [[nodiscard]] double ess() const noexcept;

    void save(std::ostream& os) const;
    static ScalarAutocorrelation restore(std::istream& is);

private:
    std::uint64_t n_ = 0;
    double sum_ = 0;    ///< sum of x_t
    double sumsq_ = 0;  ///< sum of x_t^2
    double cross_ = 0;  ///< sum of x_t * x_{t-1}
    double first_ = 0;  ///< x_1
    double last_ = 0;   ///< x_n
};

/// Per-replicate convergence watcher.  Construct against the chain's
/// superstep-0 state, call observe() after every superstep (exactly once,
/// in order), and poll stopped() — or read stop_superstep() after the run.
class EssEstimator {
public:
    /// `max_thinning` bounds the G2/BIC ladder (default_thinning_values);
    /// callers derive it from the superstep budget.
    EssEstimator(const Chain& chain, const AdaptiveStopConfig& config,
                 std::uint32_t max_thinning);

    /// Records the state after one more superstep and, at check steps,
    /// evaluates the stopping rule.  Further calls after the verdict fired
    /// keep accumulating (harmless) but the verdict is final.
    void observe(const Chain& chain);

    [[nodiscard]] const AdaptiveStopConfig& config() const noexcept {
        return config_;
    }

    [[nodiscard]] std::uint64_t supersteps() const noexcept {
        return autocorr_.supersteps();
    }

    /// True once the stopping rule has held for confirm_window consecutive
    /// checks.  Monotone: never reverts to false.
    [[nodiscard]] bool stopped() const noexcept { return stop_superstep_.has_value(); }

    /// The absolute superstep at which the verdict fired (the last check
    /// of the confirmation window), if it has.
    [[nodiscard]] std::optional<std::uint64_t> stop_superstep() const noexcept {
        return stop_superstep_;
    }

    /// Current ESS estimate of the overlap series.
    [[nodiscard]] double ess() const noexcept { return overlap_.ess(); }

    /// Current AR(1) autocorrelation time of the overlap series.
    [[nodiscard]] double act_tau() const noexcept { return overlap_.tau(); }

    /// Non-independent edge fraction at the deepest evaluable thinning
    /// (1.0 while no rung has >= 3 retained samples).
    [[nodiscard]] double non_independent_fraction() const;

    /// Serializes the complete estimator (config echo, counters, both
    /// accumulators) under the "GESA"/'E' preamble.  restore() validates
    /// the config echo against `config` and throws Error on mismatch — a
    /// sidecar recorded under different knobs must not silently steer a
    /// resumed run.
    void save(std::ostream& os) const;
    static EssEstimator restore(std::istream& is, const AdaptiveStopConfig& config);

private:
    EssEstimator(const AdaptiveStopConfig& config, ThinningAutocorrelation autocorr);

    /// Deepest thinning index with >= 3 retained samples at step s, if any.
    [[nodiscard]] std::optional<std::size_t> deepest_evaluable(std::uint64_t s) const;

    /// Evaluates one check step; updates streak_/stop_superstep_.
    void check(std::uint64_t s);

    AdaptiveStopConfig config_;
    ThinningAutocorrelation autocorr_;
    ScalarAutocorrelation overlap_;
    std::uint32_t streak_ = 0; ///< consecutive passing checks
    std::optional<std::uint64_t> stop_superstep_;
};

/// The G2/BIC ladder bound the pipeline uses for a given budget: deep
/// enough to be meaningful, never deeper than the budget can feed.
[[nodiscard]] std::uint32_t adaptive_max_thinning(std::uint64_t max_supersteps);

} // namespace gesmc
