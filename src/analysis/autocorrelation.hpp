/// \file autocorrelation.hpp
/// \brief Autocorrelation-based mixing analysis (paper §6.1).
///
/// Implements the non-parametric stopping criterion of Ray, Pinar &
/// Seshadhri ("A stopping criterion for Markov Chains when generating
/// independent random graphs", J. Complex Networks 2015) as used by the
/// paper:
///
///  * For each tracked edge e, the chain induces a binary time series
///    Z_t = [e in G_t], sampled after every superstep.
///  * For each thinning value k in a fixed set T, the k-thinned series
///    {Z_{tk}} is summarized *on the fly* into a 2x2 transition count
///    matrix (the paper's memory-saving streaming formulation).
///  * An edge is deemed *independent* at thinning k if the Bayesian
///    Information Criterion prefers an i.i.d. Bernoulli model over a
///    first-order Markov model: G2 <= ln(N), where G2 is the likelihood-
///    ratio statistic of the two models (one extra parameter, hence the
///    ln(N) penalty) and N the number of observed transitions.
///  * The reported curve is the fraction of *non-independent* edges as a
///    function of k — Figure 2/3 of the paper.
///
/// Tracked edges: either all edges of the initial graph (the paper's
/// choice for NetRep, memory Theta(m)) or every possible node pair (viable
/// for small n, closer to the SynPld setup).
#pragma once

#include "core/chain.hpp"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace gesmc {

/// Thinning set used throughout (paper: avoid large primes and numbers
/// with many divisors; quantization is inconsequential).
std::vector<std::uint32_t> default_thinning_values(std::uint32_t max_k);

/// Streaming G2/BIC independence test over thinned binary series.
class ThinningAutocorrelation {
public:
    enum class Track { kInitialEdges, kAllPairs };

    /// Prepares tracking for `chain`'s current graph (superstep 0 state).
    ThinningAutocorrelation(const Chain& chain, std::vector<std::uint32_t> thinning,
                            Track track);

    /// Records the state after one more superstep. Call exactly once per
    /// superstep, in order.
    void observe(const Chain& chain);

    /// Number of supersteps observed so far.
    [[nodiscard]] std::uint64_t supersteps() const noexcept { return step_; }

    [[nodiscard]] const std::vector<std::uint32_t>& thinning() const noexcept {
        return thinning_;
    }

    /// The edge keys whose binary series are tracked (superstep-0 order).
    [[nodiscard]] const std::vector<edge_key_t>& tracked() const noexcept {
        return tracked_;
    }

    /// Bytes held by the dense counts matrix plus the tracked-key vector —
    /// the price of streaming the test.  In kInitialEdges mode this is
    /// Theta(|thinning| * m); published as the analysis.autocorr.bytes
    /// gauge when metrics are enabled so adaptive mode's overhead shows up
    /// in telemetry.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

    /// Serializes the complete observer state (thinning ladder, tracked
    /// keys, step count, per-edge transition counts).  restore() rebuilds
    /// an observer that continues the identical stream — used by the
    /// adaptive estimator's checkpoint sidecar (analysis/ess.*).
    void save(std::ostream& os) const;
    static ThinningAutocorrelation restore(std::istream& is);

    /// Fraction of tracked edges whose k-thinned series the BIC still
    /// considers first-order Markov (non-independent), for thinning_[ki].
    [[nodiscard]] double non_independent_fraction(std::size_t ki) const;

    /// Convenience: fractions for all thinning values.
    [[nodiscard]] std::vector<double> non_independent_fractions() const;

private:
    struct EdgeCounts {
        std::uint32_t n[2][2] = {{0, 0}, {0, 0}}; ///< transition counts
        std::uint8_t prev = 0;                    ///< last retained state
    };

    ThinningAutocorrelation() = default; ///< for restore() only

    std::vector<std::uint32_t> thinning_;
    std::vector<edge_key_t> tracked_;
    /// counts_[ki * tracked_.size() + e].  Dense on purpose: every tracked
    /// edge is touched at every retained step, so a |thinning| x |tracked|
    /// matrix of 17-byte cells (padded to 20) is the compact layout — but
    /// on large graphs it is the dominant cost of running the test (about
    /// 20 * |thinning| bytes per edge; ~1.6 MiB for m = 10^4 with the
    /// default 8-value ladder).  memory_bytes() exposes the realized size.
    std::vector<EdgeCounts> counts_;
    std::uint64_t step_ = 0;
};

/// The G2 statistic for a 2x2 transition count matrix (0*ln(0) := 0).
double g2_statistic(const std::uint32_t counts[2][2]);

/// BIC rule: true iff the independent model is preferred (G2 <= ln(N)).
bool bic_prefers_independent(const std::uint32_t counts[2][2]);

} // namespace gesmc
