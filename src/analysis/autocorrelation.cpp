#include "analysis/autocorrelation.hpp"

#include "obs/metrics.hpp"
#include "util/binio.hpp"
#include "util/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

namespace gesmc {

namespace {

/// Preamble of the serialized observer: shared magic with the estimator
/// sidecar family ("GESA" = gesmc analysis), section tag 'T' (thinning),
/// version byte.  Bump the version on any layout change.
constexpr char kAutocorrMagic[4] = {'G', 'E', 'S', 'A'};
constexpr char kAutocorrTag = 'T';
constexpr int kAutocorrVersion = 1;

void publish_bytes_gauge(std::size_t bytes) {
    if (!obs::metrics_enabled()) return;
    static obs::Gauge& g =
        obs::MetricsRegistry::instance().gauge("analysis.autocorr.bytes");
    g.set(static_cast<std::int64_t>(bytes));
}

} // namespace

std::vector<std::uint32_t> default_thinning_values(std::uint32_t max_k) {
    // Smooth ladder of small-divisor values: 1, 2, 3, 4, 6, 8, 12, 16, ...
    std::vector<std::uint32_t> t{1, 2, 3};
    for (std::uint32_t base = 4; base <= max_k; base *= 2) {
        t.push_back(base);
        if (base + base / 2 <= max_k) t.push_back(base + base / 2);
    }
    std::vector<std::uint32_t> out;
    for (const auto k : t)
        if (k <= max_k) out.push_back(k);
    return out;
}

ThinningAutocorrelation::ThinningAutocorrelation(const Chain& chain,
                                                 std::vector<std::uint32_t> thinning,
                                                 Track track)
    : thinning_(std::move(thinning)) {
    GESMC_CHECK(!thinning_.empty(), "need at least one thinning value");
    const EdgeList& g = chain.graph();
    if (track == Track::kInitialEdges) {
        tracked_ = g.keys();
    } else {
        GESMC_CHECK(g.num_nodes() <= 2048, "all-pairs tracking needs small n");
        for (node_t u = 0; u < g.num_nodes(); ++u) {
            for (node_t v = u + 1; v < g.num_nodes(); ++v) {
                tracked_.push_back(edge_key(u, v));
            }
        }
    }
    // The dominant allocation: a dense |thinning| x |tracked| matrix (see
    // the header note).  One assign, no incremental growth.
    counts_.assign(thinning_.size() * tracked_.size(), EdgeCounts{});
    // Superstep-0 states seed `prev` for every thinning.
    for (std::size_t ki = 0; ki < thinning_.size(); ++ki) {
        EdgeCounts* row = counts_.data() + ki * tracked_.size();
        for (std::size_t e = 0; e < tracked_.size(); ++e) {
            row[e].prev = chain.has_edge(tracked_[e]) ? 1 : 0;
        }
    }
    publish_bytes_gauge(memory_bytes());
}

std::size_t ThinningAutocorrelation::memory_bytes() const noexcept {
    return counts_.capacity() * sizeof(EdgeCounts) +
           tracked_.capacity() * sizeof(edge_key_t) +
           thinning_.capacity() * sizeof(std::uint32_t);
}

void ThinningAutocorrelation::save(std::ostream& os) const {
    os.write(kAutocorrMagic, sizeof(kAutocorrMagic));
    os.put(kAutocorrTag);
    os.put(static_cast<char>(kAutocorrVersion));
    binio::write_varint(os, thinning_.size());
    for (const std::uint32_t k : thinning_) binio::write_varint(os, k);
    binio::write_varint(os, tracked_.size());
    for (const edge_key_t key : tracked_) binio::write_varint(os, key);
    binio::write_varint(os, step_);
    for (const EdgeCounts& c : counts_) {
        binio::write_varint(os, c.n[0][0]);
        binio::write_varint(os, c.n[0][1]);
        binio::write_varint(os, c.n[1][0]);
        binio::write_varint(os, c.n[1][1]);
        os.put(static_cast<char>(c.prev));
    }
    GESMC_CHECK(os.good(), "autocorrelation state write failed");
}

ThinningAutocorrelation ThinningAutocorrelation::restore(std::istream& is) {
    static constexpr const char* kWhat = "autocorrelation state";
    char preamble[6] = {};
    is.read(preamble, sizeof(preamble));
    GESMC_CHECK(is.gcount() == sizeof(preamble) &&
                    std::memcmp(preamble, kAutocorrMagic, 4) == 0 &&
                    preamble[4] == kAutocorrTag,
                "not a serialized autocorrelation state");
    GESMC_CHECK(preamble[5] == kAutocorrVersion,
                "unsupported autocorrelation state version");
    ThinningAutocorrelation out;
    const std::uint64_t nk = binio::read_varint(is, kWhat);
    GESMC_CHECK(nk >= 1 && nk <= 4096, "autocorrelation state: bad thinning count");
    out.thinning_.reserve(nk);
    for (std::uint64_t i = 0; i < nk; ++i) {
        const std::uint64_t k = binio::read_varint(is, kWhat);
        GESMC_CHECK(k >= 1 && k <= UINT32_MAX,
                    "autocorrelation state: bad thinning value");
        out.thinning_.push_back(static_cast<std::uint32_t>(k));
    }
    const std::uint64_t ne = binio::read_varint(is, kWhat);
    // Same distrust of header counts as graph/io: cap the upfront reserve
    // so a corrupt length fails as "truncated", not as a huge allocation.
    out.tracked_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(ne, 1u << 20)));
    for (std::uint64_t i = 0; i < ne; ++i) {
        out.tracked_.push_back(binio::read_varint(is, kWhat));
    }
    out.step_ = binio::read_varint(is, kWhat);
    out.counts_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(nk * ne, 1u << 22)));
    for (std::uint64_t i = 0; i < nk * ne; ++i) {
        EdgeCounts c;
        for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
                const std::uint64_t v = binio::read_varint(is, kWhat);
                GESMC_CHECK(v <= UINT32_MAX, "autocorrelation state: count overflow");
                c.n[a][b] = static_cast<std::uint32_t>(v);
            }
        }
        const int prev = is.get();
        GESMC_CHECK(prev == 0 || prev == 1, "autocorrelation state: bad prev bit");
        c.prev = static_cast<std::uint8_t>(prev);
        out.counts_.push_back(c);
    }
    publish_bytes_gauge(out.memory_bytes());
    return out;
}

void ThinningAutocorrelation::observe(const Chain& chain) {
    ++step_;
    for (std::size_t ki = 0; ki < thinning_.size(); ++ki) {
        if (step_ % thinning_[ki] != 0) continue;
        EdgeCounts* row = counts_.data() + ki * tracked_.size();
        for (std::size_t e = 0; e < tracked_.size(); ++e) {
            const std::uint8_t cur = chain.has_edge(tracked_[e]) ? 1 : 0;
            ++row[e].n[row[e].prev][cur];
            row[e].prev = cur;
        }
    }
}

double g2_statistic(const std::uint32_t counts[2][2]) {
    const double n00 = counts[0][0], n01 = counts[0][1];
    const double n10 = counts[1][0], n11 = counts[1][1];
    const double total = n00 + n01 + n10 + n11;
    if (total == 0) return 0.0;
    const double row0 = n00 + n01, row1 = n10 + n11;
    const double col0 = n00 + n10, col1 = n01 + n11;
    auto term = [total](double nij, double rowi, double colj) {
        if (nij == 0 || rowi == 0 || colj == 0) return 0.0;
        return nij * std::log(nij * total / (rowi * colj));
    };
    return 2.0 * (term(n00, row0, col0) + term(n01, row0, col1) + term(n10, row1, col0) +
                  term(n11, row1, col1));
}

bool bic_prefers_independent(const std::uint32_t counts[2][2]) {
    const double total = static_cast<double>(counts[0][0]) + counts[0][1] + counts[1][0] +
                         counts[1][1];
    if (total < 2) return false; // not enough evidence either way
    // The Markov model has one extra parameter; BIC penalty ln(N).
    return g2_statistic(counts) <= std::log(total);
}

double ThinningAutocorrelation::non_independent_fraction(std::size_t ki) const {
    GESMC_CHECK(ki < thinning_.size(), "thinning index out of range");
    if (tracked_.empty()) return 0.0;
    const EdgeCounts* row = counts_.data() + ki * tracked_.size();
    std::size_t dependent = 0;
    for (std::size_t e = 0; e < tracked_.size(); ++e) {
        if (!bic_prefers_independent(row[e].n)) ++dependent;
    }
    return static_cast<double>(dependent) / static_cast<double>(tracked_.size());
}

std::vector<double> ThinningAutocorrelation::non_independent_fractions() const {
    std::vector<double> out(thinning_.size());
    for (std::size_t ki = 0; ki < thinning_.size(); ++ki) {
        out[ki] = non_independent_fraction(ki);
    }
    return out;
}

} // namespace gesmc
