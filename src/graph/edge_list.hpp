/// \file edge_list.hpp
/// \brief The edge-list graph representation used by all switching chains.
///
/// Edge switching needs (a) O(1) access to the i-th edge for uniform edge
/// sampling and (b) an edge hash set for existence queries (paper §5.2/5.3).
/// EdgeList is the plain indexed list (a); chains pair it with a RobinSet or
/// ConcurrentEdgeSet (b) that they keep in sync.  Edges are stored as
/// canonical 56-bit keys.
#pragma once

#include "graph/edge.hpp"

#include <cstdint>
#include <vector>

namespace gesmc {

class EdgeList {
public:
    EdgeList() = default;

    /// Builds from (u, v) pairs; orientations are canonicalized.
    /// Validates node range and rejects loops.
    static EdgeList from_pairs(node_t num_nodes, const std::vector<Edge>& pairs);

    /// Builds from canonical keys (validated).
    static EdgeList from_keys(node_t num_nodes, std::vector<edge_key_t> keys);

    [[nodiscard]] node_t num_nodes() const noexcept { return num_nodes_; }
    [[nodiscard]] std::uint64_t num_edges() const noexcept { return keys_.size(); }

    [[nodiscard]] edge_key_t key(std::uint64_t i) const noexcept { return keys_[i]; }
    [[nodiscard]] Edge edge(std::uint64_t i) const noexcept { return edge_from_key(keys_[i]); }
    void set_key(std::uint64_t i, edge_key_t key) noexcept { keys_[i] = key; }

    [[nodiscard]] const std::vector<edge_key_t>& keys() const noexcept { return keys_; }
    [[nodiscard]] std::vector<edge_key_t>& keys() noexcept { return keys_; }

    /// Degree of every node (recomputed O(n + m)).
    [[nodiscard]] std::vector<std::uint32_t> degrees() const;

    /// True iff no loops and no duplicate edges.
    [[nodiscard]] bool is_simple() const;

    /// Density m / C(n, 2).
    [[nodiscard]] double density() const noexcept;

    /// Keys sorted ascending — a canonical form for graph equality checks.
    [[nodiscard]] std::vector<edge_key_t> sorted_keys() const;

    /// True iff both lists describe the same graph (same key multiset).
    [[nodiscard]] bool same_graph(const EdgeList& other) const;

private:
    node_t num_nodes_ = 0;
    std::vector<edge_key_t> keys_;
};

} // namespace gesmc
