#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gesmc {

std::uint64_t triangle_count(const Adjacency& adj) {
    // Node-iterator over ordered wedges: count, for every u, the common
    // neighbors of u and each neighbor v > u that are > v. Every triangle
    // x < y < z is counted exactly once (at u = x, v = y).
    const node_t n = adj.num_nodes();
    std::uint64_t triangles = 0;
    for (node_t u = 0; u < n; ++u) {
        const auto nu = adj.neighbors(u);
        for (const node_t v : nu) {
            if (v <= u) continue;
            const auto nv = adj.neighbors(v);
            // Merge-intersect the suffixes > v.
            auto itu = std::upper_bound(nu.begin(), nu.end(), v);
            auto itv = std::upper_bound(nv.begin(), nv.end(), v);
            while (itu != nu.end() && itv != nv.end()) {
                if (*itu < *itv) {
                    ++itu;
                } else if (*itv < *itu) {
                    ++itv;
                } else {
                    ++triangles;
                    ++itu;
                    ++itv;
                }
            }
        }
    }
    return triangles;
}

namespace {

std::uint64_t wedge_count(const Adjacency& adj) {
    std::uint64_t wedges = 0;
    for (node_t u = 0; u < adj.num_nodes(); ++u) {
        const std::uint64_t d = adj.degree(u);
        wedges += d * (d - 1) / 2;
    }
    return wedges;
}

} // namespace

double global_clustering(const Adjacency& adj) {
    const std::uint64_t wedges = wedge_count(adj);
    if (wedges == 0) return 0.0;
    return 3.0 * static_cast<double>(triangle_count(adj)) / static_cast<double>(wedges);
}

double mean_local_clustering(const Adjacency& adj) {
    const node_t n = adj.num_nodes();
    if (n == 0) return 0.0;
    double sum = 0;
    for (node_t u = 0; u < n; ++u) {
        const auto nu = adj.neighbors(u);
        const std::uint64_t d = nu.size();
        if (d < 2) continue;
        std::uint64_t closed = 0;
        for (std::size_t a = 0; a < nu.size(); ++a) {
            for (std::size_t b = a + 1; b < nu.size(); ++b) {
                if (adj.has_edge(nu[a], nu[b])) ++closed;
            }
        }
        sum += static_cast<double>(closed) / (static_cast<double>(d) * (d - 1) / 2.0);
    }
    return sum / static_cast<double>(n);
}

double degree_assortativity(const EdgeList& graph) {
    const auto deg = graph.degrees();
    const std::uint64_t m = graph.num_edges();
    if (m == 0) return 0.0;
    // Newman's r: Pearson correlation over the 2m ordered endpoint pairs.
    double sxy = 0, sx = 0, sxx = 0;
    for (std::uint64_t i = 0; i < m; ++i) {
        const Edge e = graph.edge(i);
        const double du = deg[e.u];
        const double dv = deg[e.v];
        sxy += 2 * du * dv;
        sx += du + dv;
        sxx += du * du + dv * dv;
    }
    const double inv = 1.0 / (2.0 * static_cast<double>(m));
    const double mean = sx * inv;
    const double var = sxx * inv - mean * mean;
    if (var <= 1e-12) return 0.0;
    const double cov = sxy * inv - mean * mean;
    return cov / var;
}

namespace {

std::vector<std::uint64_t> component_sizes(const Adjacency& adj) {
    const node_t n = adj.num_nodes();
    std::vector<bool> visited(n, false);
    std::vector<node_t> stack;
    std::vector<std::uint64_t> sizes;
    for (node_t s = 0; s < n; ++s) {
        if (visited[s]) continue;
        std::uint64_t size = 0;
        stack.push_back(s);
        visited[s] = true;
        while (!stack.empty()) {
            const node_t u = stack.back();
            stack.pop_back();
            ++size;
            for (const node_t v : adj.neighbors(u)) {
                if (!visited[v]) {
                    visited[v] = true;
                    stack.push_back(v);
                }
            }
        }
        sizes.push_back(size);
    }
    return sizes;
}

} // namespace

std::uint64_t connected_components(const Adjacency& adj) {
    return component_sizes(adj).size();
}

std::uint64_t largest_component(const Adjacency& adj) {
    const auto sizes = component_sizes(adj);
    return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

} // namespace gesmc
