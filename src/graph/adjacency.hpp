/// \file adjacency.hpp
/// \brief Immutable CSR adjacency built from an edge list.
///
/// The switching chains never use adjacency (the paper argues hash sets are
/// the right representation, §5.2) — CSR serves the *analysis* side:
/// triangle counting, clustering, assortativity, components.
#pragma once

#include "graph/edge_list.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace gesmc {

class Adjacency {
public:
    /// Builds CSR with sorted neighborhoods.
    explicit Adjacency(const EdgeList& graph);

    [[nodiscard]] node_t num_nodes() const noexcept {
        return static_cast<node_t>(offsets_.size() - 1);
    }
    [[nodiscard]] std::uint64_t num_edges() const noexcept { return neighbors_.size() / 2; }

    [[nodiscard]] std::span<const node_t> neighbors(node_t u) const noexcept {
        return {neighbors_.data() + offsets_[u], neighbors_.data() + offsets_[u + 1]};
    }

    [[nodiscard]] std::uint32_t degree(node_t u) const noexcept {
        return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
    }

    /// Binary search in the sorted neighborhood of the lower-degree endpoint.
    [[nodiscard]] bool has_edge(node_t u, node_t v) const noexcept;

private:
    std::vector<std::uint64_t> offsets_;
    std::vector<node_t> neighbors_;
};

} // namespace gesmc
