#include "graph/degree_sequence.hpp"

#include "graph/edge_list.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace gesmc {

std::uint64_t DegreeSequence::degree_sum() const noexcept {
    return std::accumulate(deg_.begin(), deg_.end(), std::uint64_t{0});
}

std::uint32_t DegreeSequence::max_degree() const noexcept {
    return deg_.empty() ? 0 : *std::max_element(deg_.begin(), deg_.end());
}

bool DegreeSequence::is_graphical() const {
    const std::uint64_t sum = degree_sum();
    if (sum % 2 != 0) return false;
    if (deg_.empty()) return true;

    std::vector<std::uint32_t> d = deg_;
    std::sort(d.begin(), d.end(), std::greater<>());
    const std::size_t n = d.size();
    if (d[0] >= n) return false;

    // Erdos–Gallai, O(n) after sorting: for each prefix length k,
    //   sum_{i<=k} d_i <= k(k-1) + sum_{i>k} min(d_i, k).
    // The tail is evaluated with prefix sums and a split pointer to the
    // first index with d_i <= k; the pointer only ever moves left as k
    // grows, so the whole sweep is linear.
    std::vector<std::uint64_t> prefix(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + d[i];

    std::size_t split = n; // first index (0-based) with d[i] <= k
    for (std::uint64_t k = 1; k <= n; ++k) {
        while (split > 0 && d[split - 1] <= k) --split;
        // Tail indices are [k, n). Before `big` the degrees exceed k and
        // contribute k each; from `big` on they contribute themselves.
        const std::size_t big = std::max(static_cast<std::size_t>(k), split);
        const std::uint64_t capped = static_cast<std::uint64_t>(big - k) * k;
        const std::uint64_t rest = prefix[n] - prefix[big];
        if (prefix[k] > k * (k - 1) + capped + rest) return false;
    }
    return true;
}

double DegreeSequence::p2() const noexcept {
    const double m = static_cast<double>(num_edges());
    if (m < 2) return 0.0;
    double s2 = 0, s4 = 0;
    for (const std::uint32_t d : deg_) {
        const double dd = static_cast<double>(d);
        s2 += dd * dd;
        s4 += dd * dd * dd * dd;
    }
    const double denom = m * (m - 1);
    return (s2 * s2 - s4) / (2.0 * denom * denom);
}

double DegreeSequence::theorem2_round_bound() const noexcept {
    const double m = static_cast<double>(num_edges());
    if (m == 0) return std::numeric_limits<double>::infinity();
    const double delta = static_cast<double>(max_degree());
    return 4.0 * delta * delta / m;
}

DegreeSequence degree_sequence_of(const EdgeList& graph) {
    return DegreeSequence{graph.degrees()};
}

} // namespace gesmc
