/// \file degree_sequence.hpp
/// \brief Degree sequences: graphicality, statistics, and the P2 measure.
///
/// Theorem 3 of the paper bounds the expected rounds of a global switch by
/// O(P2 * m) with P2 = sum over possible edges {u,v} of
/// (d_u d_v / (m(m-1)))^2.  P2 has the closed form
///   P2 = [ (sum d^2)^2 - sum d^4 ] / ( 2 * (m(m-1))^2 ),
/// which we expose together with the Erdos–Gallai graphicality test.
#pragma once

#include "graph/edge.hpp"

#include <cstdint>
#include <vector>

namespace gesmc {

class EdgeList;

class DegreeSequence {
public:
    DegreeSequence() = default;
    explicit DegreeSequence(std::vector<std::uint32_t> degrees) : deg_(std::move(degrees)) {}

    [[nodiscard]] const std::vector<std::uint32_t>& degrees() const noexcept { return deg_; }
    [[nodiscard]] std::size_t num_nodes() const noexcept { return deg_.size(); }

    /// Sum of degrees (2m for a realization).
    [[nodiscard]] std::uint64_t degree_sum() const noexcept;

    /// Number of edges of any realization (degree_sum / 2).
    [[nodiscard]] std::uint64_t num_edges() const noexcept { return degree_sum() / 2; }

    [[nodiscard]] std::uint32_t max_degree() const noexcept;

    /// Erdos–Gallai: true iff some simple graph realizes this sequence.
    [[nodiscard]] bool is_graphical() const;

    /// The paper's P2 statistic (Theorem 3), in closed form.
    [[nodiscard]] double p2() const noexcept;

    /// Upper bound 4*Delta^2/m on expected rounds (Theorem 2);
    /// returns +inf for m == 0.
    [[nodiscard]] double theorem2_round_bound() const noexcept;

private:
    std::vector<std::uint32_t> deg_;
};

/// Degree sequence of a graph.
DegreeSequence degree_sequence_of(const EdgeList& graph);

} // namespace gesmc
