/// \file io.hpp
/// \brief Plain-text edge-list IO for examples and interoperability.
///
/// Format: optional '%'/'#' comment lines, then one "u v" pair per line
/// (0-based node ids). Loops and duplicate edges are rejected on read, and
/// directed duplicates collapse to one undirected edge — the same cleaning
/// the paper applies to the NetRep graphs (§6).
#pragma once

#include "graph/edge_list.hpp"

#include <iosfwd>
#include <string>

namespace gesmc {

/// Writes "u v" lines preceded by a "# nodes <n> edges <m>" header.
void write_edge_list(std::ostream& os, const EdgeList& graph);
void write_edge_list_file(const std::string& path, const EdgeList& graph);

/// Reads an edge list; node count is 1 + max id unless the header names it.
/// Self-loops are dropped and duplicate (multi-)edges collapsed, mirroring
/// the paper's NetRep preprocessing.
EdgeList read_edge_list(std::istream& is);
EdgeList read_edge_list_file(const std::string& path);

} // namespace gesmc
