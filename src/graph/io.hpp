/// \file io.hpp
/// \brief Graph and degree-sequence IO: text edge lists, a compact binary
/// edge-list format, and degree-sequence files.
///
/// Text format: optional '%'/'#' comment lines, then one "u v" pair per line
/// (0-based node ids). Loops and duplicate edges are rejected on read, and
/// directed duplicates collapse to one undirected edge — the same cleaning
/// the paper applies to the NetRep graphs (§6).
///
/// Binary format ("GESB", version 1): a canonical, compact encoding for
/// large corpora. Layout:
///   bytes 0..3   magic "GESB"
///   byte  4      format version (1)
///   varint       num_nodes
///   varint       num_edges
///   varint * m   delta-encoded sorted edge keys (first key absolute, then
///                key[i] - key[i-1]; strictly positive for simple graphs)
/// Varints are LEB128 (7 data bits per byte, high bit = continuation).
/// Sorting makes the encoding canonical — two equal graphs always produce
/// identical bytes — and keeps deltas small: real corpora compress to a few
/// bytes per edge instead of the text format's ~2 decimal ids + separators.
///
/// Chain-state section ("GESB" + tag 'S', version 1): a resumable chain
/// snapshot (core/chain.hpp ChainState).  Shares the GESB magic so one
/// sniffing rule covers the whole binary family; the fifth byte
/// distinguishes sections (graph sections put their format version there,
/// chain-state sections the tag 'S' followed by their own version byte).
/// This is the one place graph/ includes a core/ header — deliberate: the
/// GESB container (magic, varints, sniffing) has a single home, and the
/// include is acyclic (core/chain.hpp pulls only graph/edge_list.hpp).
/// Layout after the 6-byte preamble, all integers LEB128 varints:
///   varint       algorithm name length, then that many name bytes
///                (CLI names, e.g. "par-global-es" — stable across enum
///                reorderings)
///   varint       seed
///   varint       counter (stream position; see ChainState)
///   8 bytes      pl (IEEE-754 bit pattern, little-endian; G-ES trajectory
///                parameter — ES chains ignore it)
///   varint       num_nodes
///   varint       num_edges
///   varint * 7   stats: supersteps, attempted, accepted, rejected_loop,
///                rejected_edge, rounds_total, rounds_max
///   8 bytes * 2  stats: first_round_seconds, later_rounds_seconds
///                (IEEE-754 bit patterns, little-endian)
///   varint * m   edge keys in slot order (raw, NOT delta-coded: the order
///                is the chain's sampling array, not sorted)
///
/// Degree-sequence files: whitespace-separated non-negative integers with
/// the same '%'/'#' comment rules, in node-id order.
#pragma once

#include "core/chain.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/edge_list.hpp"

#include <iosfwd>
#include <string>

namespace gesmc {

/// Writes "u v" lines preceded by a "# nodes <n> edges <m>" header.
void write_edge_list(std::ostream& os, const EdgeList& graph);
void write_edge_list_file(const std::string& path, const EdgeList& graph);

/// Reads an edge list; node count is 1 + max id unless the header names it.
/// Self-loops are dropped and duplicate (multi-)edges collapsed, mirroring
/// the paper's NetRep preprocessing.
EdgeList read_edge_list(std::istream& is);
EdgeList read_edge_list_file(const std::string& path);

/// Writes the compact binary format (canonical: edges sorted by key).
void write_edge_list_binary(std::ostream& os, const EdgeList& graph);
void write_edge_list_binary_file(const std::string& path, const EdgeList& graph);

/// Reads the binary format; throws Error on bad magic/version/payload.
EdgeList read_edge_list_binary(std::istream& is);
EdgeList read_edge_list_binary_file(const std::string& path);

/// True iff the stream/file starts with the binary magic (peeks, does not
/// consume).
bool is_binary_edge_list(std::istream& is);

/// Reads either format, sniffing the magic bytes.
EdgeList read_any_edge_list_file(const std::string& path);

/// Writes the GESB chain-state section (see the header comment).
void write_chain_state(std::ostream& os, const ChainState& state);
void write_chain_state_file(const std::string& path, const ChainState& state);

/// Crash-safe variant for checkpoints: writes a sibling temp file, then
/// renames into place, so a kill mid-write can neither leave a truncated
/// state nor destroy the previous good one.
void write_chain_state_file_atomic(const std::string& path, const ChainState& state);

/// Reads a chain-state section; throws Error on bad magic/tag/version,
/// unknown algorithm name, or a truncated/overflowing payload.
ChainState read_chain_state(std::istream& is);
ChainState read_chain_state_file(const std::string& path);

/// True iff the stream/file starts with the chain-state preamble (peeks,
/// does not consume) — the sniffing twin of is_binary_edge_list.
bool is_chain_state(std::istream& is);
bool is_chain_state_file(const std::string& path);

/// Writes one degree per line with a "# nodes <n>" header.
void write_degree_sequence(std::ostream& os, const DegreeSequence& seq);
void write_degree_sequence_file(const std::string& path, const DegreeSequence& seq);

/// Reads whitespace-separated degrees ('%'/'#' comment lines allowed).
DegreeSequence read_degree_sequence(std::istream& is);
DegreeSequence read_degree_sequence_file(const std::string& path);

} // namespace gesmc
