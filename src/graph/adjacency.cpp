#include "graph/adjacency.hpp"

#include <algorithm>

namespace gesmc {

Adjacency::Adjacency(const EdgeList& graph) {
    const node_t n = graph.num_nodes();
    offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (std::uint64_t i = 0; i < graph.num_edges(); ++i) {
        const Edge e = graph.edge(i);
        ++offsets_[e.u + 1];
        ++offsets_[e.v + 1];
    }
    for (std::size_t u = 0; u < n; ++u) offsets_[u + 1] += offsets_[u];

    neighbors_.resize(2 * graph.num_edges());
    std::vector<std::uint64_t> fill(offsets_.begin(), offsets_.end() - 1);
    for (std::uint64_t i = 0; i < graph.num_edges(); ++i) {
        const Edge e = graph.edge(i);
        neighbors_[fill[e.u]++] = e.v;
        neighbors_[fill[e.v]++] = e.u;
    }
    for (node_t u = 0; u < n; ++u) {
        std::sort(neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
                  neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]));
    }
}

bool Adjacency::has_edge(node_t u, node_t v) const noexcept {
    if (degree(u) > degree(v)) std::swap(u, v);
    const auto nb = neighbors(u);
    return std::binary_search(nb.begin(), nb.end(), v);
}

} // namespace gesmc
