/// \file edge.hpp
/// \brief Canonical 64-bit edge encoding (paper §5.2).
///
/// Each possible undirected edge {u,v} is identified by a unique integer:
/// the smaller endpoint in the upper bits, the larger endpoint in the lower
/// bits.  We pack 28+28 bits so the key fits the 56-bit payload of the
/// concurrent edge set buckets (8 bits are reserved for locking), matching
/// the paper's n <= 2^28 nodes / P < 256 threads restriction.
///
/// Key 0 encodes the loop (0,0), which can never be a graph edge — it
/// doubles as the empty-bucket sentinel of the hash sets.
#pragma once

#include "util/check.hpp"

#include <compare>
#include <cstdint>

namespace gesmc {

using node_t = std::uint32_t;
using edge_key_t = std::uint64_t;

inline constexpr unsigned kNodeBits = 28;
inline constexpr node_t kMaxNode = (node_t{1} << kNodeBits) - 1;

/// A directed representation (u, v) of an edge, as in the paper's tau.
/// The canonical orientation has u <= v (u < v for simple edges).
struct Edge {
    node_t u = 0;
    node_t v = 0;

    [[nodiscard]] constexpr bool is_loop() const noexcept { return u == v; }

    /// Canonical orientation (min, max).
    [[nodiscard]] constexpr Edge canonical() const noexcept {
        return u <= v ? Edge{u, v} : Edge{v, u};
    }

    constexpr auto operator<=>(const Edge&) const = default;
};

/// Packs a canonical edge into its unique 56-bit key. Accepts loops (the
/// dependency table stores loop targets of illegal switches gracefully, and
/// tests use them); graph edge sets only ever store non-loop keys.
[[nodiscard]] constexpr edge_key_t edge_key(Edge e) noexcept {
    const Edge c = e.canonical();
    return (static_cast<edge_key_t>(c.u) << kNodeBits) | static_cast<edge_key_t>(c.v);
}

[[nodiscard]] constexpr edge_key_t edge_key(node_t u, node_t v) noexcept {
    return edge_key(Edge{u, v});
}

/// Inverse of edge_key.
[[nodiscard]] constexpr Edge edge_from_key(edge_key_t key) noexcept {
    return Edge{static_cast<node_t>(key >> kNodeBits),
                static_cast<node_t>(key & ((edge_key_t{1} << kNodeBits) - 1))};
}

[[nodiscard]] constexpr bool key_is_loop(edge_key_t key) noexcept {
    const Edge e = edge_from_key(key);
    return e.u == e.v;
}

} // namespace gesmc
