#include "graph/io.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace gesmc {

namespace {

constexpr char kBinaryMagic[4] = {'G', 'E', 'S', 'B'};
constexpr std::uint8_t kBinaryVersion = 1;

// Chain-state sections share the magic; byte 4 carries this tag instead of
// a graph format version ('S' = 0x53, far from any plausible version
// number), byte 5 the section's own version.
constexpr char kChainStateTag = 'S';
constexpr std::uint8_t kChainStateVersion = 1;

void write_varint(std::ostream& os, std::uint64_t v) {
    char buf[10];
    int len = 0;
    while (v >= 0x80) {
        buf[len++] = static_cast<char>((v & 0x7F) | 0x80);
        v >>= 7;
    }
    buf[len++] = static_cast<char>(v);
    os.write(buf, len);
}

/// `what` names the enclosing section in errors ("binary edge list",
/// "chain state") so a truncated checkpoint is not reported as a broken
/// graph file.
std::uint64_t read_varint(std::istream& is, const char* what = "binary edge list") {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int byte = is.get();
        GESMC_CHECK(byte != std::char_traits<char>::eof(), std::string(what) + " truncated");
        // The 10th byte (shift 63) has room for one data bit only; higher
        // bits would be shifted out silently.
        GESMC_CHECK(shift < 63 || (byte & 0x7E) == 0,
                    std::string(what) + ": varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) return v;
    }
    throw Error(std::string(what) + ": varint longer than 64 bits");
}

} // namespace

void write_edge_list(std::ostream& os, const EdgeList& graph) {
    os << "# nodes " << graph.num_nodes() << " edges " << graph.num_edges() << '\n';
    for (std::uint64_t i = 0; i < graph.num_edges(); ++i) {
        const Edge e = graph.edge(i);
        os << e.u << ' ' << e.v << '\n';
    }
    GESMC_CHECK(os.good(), "edge list write failed");
}

void write_edge_list_file(const std::string& path, const EdgeList& graph) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_edge_list(os, graph);
}

EdgeList read_edge_list(std::istream& is) {
    std::vector<edge_key_t> keys;
    node_t declared_nodes = 0;
    node_t max_node = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line[0] == '%' || line[0] == '#') {
            std::istringstream header(line.substr(1));
            std::string word;
            while (header >> word) {
                if (word == "nodes") header >> declared_nodes;
            }
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t u = 0, v = 0;
        GESMC_CHECK(static_cast<bool>(fields >> u >> v), "malformed edge line: " + line);
        GESMC_CHECK(u <= kMaxNode && v <= kMaxNode, "node id exceeds 2^28-1");
        if (u == v) continue; // drop self-loops (paper's NetRep cleaning)
        keys.push_back(edge_key(static_cast<node_t>(u), static_cast<node_t>(v)));
        max_node = std::max({max_node, static_cast<node_t>(u), static_cast<node_t>(v)});
    }
    // Collapse multi-edges.
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    const node_t n = std::max<node_t>(declared_nodes, keys.empty() ? 0 : max_node + 1);
    return EdgeList::from_keys(n, std::move(keys));
}

EdgeList read_edge_list_file(const std::string& path) {
    std::ifstream is(path);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_edge_list(is);
}

// ------------------------------------------------------------------ binary

void write_edge_list_binary(std::ostream& os, const EdgeList& graph) {
    os.write(kBinaryMagic, sizeof(kBinaryMagic));
    os.put(static_cast<char>(kBinaryVersion));
    write_varint(os, graph.num_nodes());
    write_varint(os, graph.num_edges());
    const std::vector<edge_key_t> sorted = graph.sorted_keys();
    edge_key_t prev = 0;
    for (const edge_key_t key : sorted) {
        write_varint(os, key - prev);
        prev = key;
    }
    GESMC_CHECK(os.good(), "binary edge list write failed");
}

void write_edge_list_binary_file(const std::string& path, const EdgeList& graph) {
    std::ofstream os(path, std::ios::binary);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_edge_list_binary(os, graph);
}

EdgeList read_edge_list_binary(std::istream& is) {
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    GESMC_CHECK(is.gcount() == sizeof(magic) &&
                    std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0,
                "not a GESB binary edge list");
    const int version = is.get();
    GESMC_CHECK(version != kChainStateTag,
                "this GESB file is a chain-state section, not a graph "
                "(read it with read_chain_state)");
    GESMC_CHECK(version == kBinaryVersion,
                "unsupported GESB version: " + std::to_string(version));
    const std::uint64_t n = read_varint(is);
    GESMC_CHECK(n <= static_cast<std::uint64_t>(kMaxNode) + 1, "node count exceeds 2^28");
    const std::uint64_t m = read_varint(is);
    std::vector<edge_key_t> keys;
    // Don't trust the header's edge count for the allocation: a corrupt m
    // must fail as "truncated" below, not as a multi-exabyte reserve here.
    keys.reserve(std::min<std::uint64_t>(m, 1u << 20));
    edge_key_t prev = 0;
    for (std::uint64_t i = 0; i < m; ++i) {
        const std::uint64_t delta = read_varint(is);
        // Deltas of the sorted key sequence are strictly positive (key 0 is
        // the loop {0,0}, never a simple edge; a zero delta later would be a
        // duplicate).  Guard the sum against wrap-around too: wrapped keys
        // would break the strictly-increasing order that from_keys's
        // per-key validation cannot check.
        GESMC_CHECK(delta != 0, "binary edge list: duplicate or zero key");
        GESMC_CHECK(delta <= ~prev, "binary edge list: key overflows 64 bits");
        prev += delta;
        keys.push_back(prev);
    }
    // from_keys validates canonical form and node range.
    return EdgeList::from_keys(static_cast<node_t>(n), std::move(keys));
}

EdgeList read_edge_list_binary_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_edge_list_binary(is);
}

bool is_binary_edge_list(std::istream& is) {
    char magic[4] = {};
    const std::streampos pos = is.tellg();
    is.read(magic, sizeof(magic));
    const bool matched = is.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
                         std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0;
    is.clear();
    is.seekg(pos);
    return matched;
}

EdgeList read_any_edge_list_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    if (is_binary_edge_list(is)) return read_edge_list_binary(is);
    return read_edge_list(is);
}

// ------------------------------------------------------------- chain state

namespace {

void write_double_le(std::ostream& os, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
    os.write(buf, sizeof(buf));
}

double read_double_le(std::istream& is) {
    char buf[8];
    is.read(buf, sizeof(buf));
    GESMC_CHECK(is.gcount() == static_cast<std::streamsize>(sizeof(buf)),
                "chain state truncated");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
        bits |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
    }
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace

void write_chain_state(std::ostream& os, const ChainState& state) {
    os.write(kBinaryMagic, sizeof(kBinaryMagic));
    os.put(kChainStateTag);
    os.put(static_cast<char>(kChainStateVersion));
    const std::string name = chain_algorithm_name(state.algorithm);
    write_varint(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_varint(os, state.seed);
    write_varint(os, state.counter);
    write_double_le(os, state.pl);
    write_varint(os, state.num_nodes);
    write_varint(os, state.keys.size());
    write_varint(os, state.stats.supersteps);
    write_varint(os, state.stats.attempted);
    write_varint(os, state.stats.accepted);
    write_varint(os, state.stats.rejected_loop);
    write_varint(os, state.stats.rejected_edge);
    write_varint(os, state.stats.rounds_total);
    write_varint(os, state.stats.rounds_max);
    write_double_le(os, state.stats.first_round_seconds);
    write_double_le(os, state.stats.later_rounds_seconds);
    for (const edge_key_t key : state.keys) write_varint(os, key);
    GESMC_CHECK(os.good(), "chain state write failed");
}

void write_chain_state_file(const std::string& path, const ChainState& state) {
    std::ofstream os(path, std::ios::binary);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_chain_state(os, state);
}

void write_chain_state_file_atomic(const std::string& path, const ChainState& state) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary);
        GESMC_CHECK(os.good(), "cannot open for writing: " + tmp);
        write_chain_state(os, state);
        // Flush before the rename: a full disk must fail here, not
        // silently install a truncated state over the last good one.
        os.close();
        GESMC_CHECK(os.good(), "chain state flush failed: " + tmp);
    }
    std::filesystem::rename(tmp, path);
}

ChainState read_chain_state(std::istream& is) {
    char preamble[6] = {};
    is.read(preamble, sizeof(preamble));
    GESMC_CHECK(is.gcount() == sizeof(preamble) &&
                    std::memcmp(preamble, kBinaryMagic, sizeof(kBinaryMagic)) == 0 &&
                    preamble[4] == kChainStateTag,
                "not a GESB chain-state section");
    const int version = static_cast<unsigned char>(preamble[5]);
    GESMC_CHECK(version == kChainStateVersion,
                "unsupported chain-state version: " + std::to_string(version));

    ChainState state;
    const std::uint64_t name_len = read_varint(is, "chain state");
    GESMC_CHECK(name_len <= 64, "chain state: implausible algorithm name length");
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    GESMC_CHECK(is.gcount() == static_cast<std::streamsize>(name_len),
                "chain state truncated");
    state.algorithm = chain_algorithm_from_string(name);

    state.seed = read_varint(is, "chain state");
    state.counter = read_varint(is, "chain state");
    state.pl = read_double_le(is);
    const std::uint64_t n = read_varint(is, "chain state");
    GESMC_CHECK(n <= static_cast<std::uint64_t>(kMaxNode) + 1,
                "chain state: node count exceeds 2^28");
    state.num_nodes = static_cast<node_t>(n);
    const std::uint64_t m = read_varint(is, "chain state");
    state.stats.supersteps = read_varint(is, "chain state");
    state.stats.attempted = read_varint(is, "chain state");
    state.stats.accepted = read_varint(is, "chain state");
    state.stats.rejected_loop = read_varint(is, "chain state");
    state.stats.rejected_edge = read_varint(is, "chain state");
    state.stats.rounds_total = read_varint(is, "chain state");
    state.stats.rounds_max = read_varint(is, "chain state");
    state.stats.first_round_seconds = read_double_le(is);
    state.stats.later_rounds_seconds = read_double_le(is);
    // As for graphs: never trust the header's count for the allocation.
    state.keys.reserve(std::min<std::uint64_t>(m, 1u << 20));
    for (std::uint64_t i = 0; i < m; ++i) state.keys.push_back(read_varint(is, "chain state"));
    // Slot order carries no sortedness to exploit (unlike the graph
    // section's strictly-increasing deltas), so duplicates need an explicit
    // check — a corrupt snapshot must fail here with the right message, not
    // as a downstream "non-simple graph" pointing at the chain.
    std::vector<edge_key_t> sorted = state.keys;
    std::sort(sorted.begin(), sorted.end());
    GESMC_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                "chain state: duplicate edge key");
    return state;
}

ChainState read_chain_state_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_chain_state(is);
}

bool is_chain_state(std::istream& is) {
    char preamble[5] = {};
    const std::streampos pos = is.tellg();
    is.read(preamble, sizeof(preamble));
    const bool matched =
        is.gcount() == static_cast<std::streamsize>(sizeof(preamble)) &&
        std::memcmp(preamble, kBinaryMagic, sizeof(kBinaryMagic)) == 0 &&
        preamble[4] == kChainStateTag;
    is.clear();
    is.seekg(pos);
    return matched;
}

bool is_chain_state_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return is_chain_state(is);
}

// --------------------------------------------------------- degree sequence

void write_degree_sequence(std::ostream& os, const DegreeSequence& seq) {
    os << "# nodes " << seq.num_nodes() << '\n';
    for (const std::uint32_t d : seq.degrees()) os << d << '\n';
    GESMC_CHECK(os.good(), "degree sequence write failed");
}

void write_degree_sequence_file(const std::string& path, const DegreeSequence& seq) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_degree_sequence(os, seq);
}

DegreeSequence read_degree_sequence(std::istream& is) {
    std::vector<std::uint32_t> degrees;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '%' || line[0] == '#') continue;
        std::istringstream fields(line);
        std::uint64_t d = 0;
        while (fields >> d) {
            GESMC_CHECK(d <= kMaxNode, "degree exceeds max node count");
            degrees.push_back(static_cast<std::uint32_t>(d));
        }
        GESMC_CHECK(fields.eof(), "malformed degree line: " + line);
    }
    return DegreeSequence(std::move(degrees));
}

DegreeSequence read_degree_sequence_file(const std::string& path) {
    std::ifstream is(path);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_degree_sequence(is);
}

} // namespace gesmc
