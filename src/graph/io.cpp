#include "graph/io.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

namespace gesmc {

void write_edge_list(std::ostream& os, const EdgeList& graph) {
    os << "# nodes " << graph.num_nodes() << " edges " << graph.num_edges() << '\n';
    for (std::uint64_t i = 0; i < graph.num_edges(); ++i) {
        const Edge e = graph.edge(i);
        os << e.u << ' ' << e.v << '\n';
    }
}

void write_edge_list_file(const std::string& path, const EdgeList& graph) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_edge_list(os, graph);
}

EdgeList read_edge_list(std::istream& is) {
    std::vector<edge_key_t> keys;
    node_t declared_nodes = 0;
    node_t max_node = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line[0] == '%' || line[0] == '#') {
            std::istringstream header(line.substr(1));
            std::string word;
            while (header >> word) {
                if (word == "nodes") header >> declared_nodes;
            }
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t u = 0, v = 0;
        GESMC_CHECK(static_cast<bool>(fields >> u >> v), "malformed edge line: " + line);
        GESMC_CHECK(u <= kMaxNode && v <= kMaxNode, "node id exceeds 2^28-1");
        if (u == v) continue; // drop self-loops (paper's NetRep cleaning)
        keys.push_back(edge_key(static_cast<node_t>(u), static_cast<node_t>(v)));
        max_node = std::max({max_node, static_cast<node_t>(u), static_cast<node_t>(v)});
    }
    // Collapse multi-edges.
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    const node_t n = std::max<node_t>(declared_nodes, keys.empty() ? 0 : max_node + 1);
    return EdgeList::from_keys(n, std::move(keys));
}

EdgeList read_edge_list_file(const std::string& path) {
    std::ifstream is(path);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_edge_list(is);
}

} // namespace gesmc
