#include "graph/io.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace gesmc {

namespace {

constexpr char kBinaryMagic[4] = {'G', 'E', 'S', 'B'};
constexpr std::uint8_t kBinaryVersion = 1;

void write_varint(std::ostream& os, std::uint64_t v) {
    char buf[10];
    int len = 0;
    while (v >= 0x80) {
        buf[len++] = static_cast<char>((v & 0x7F) | 0x80);
        v >>= 7;
    }
    buf[len++] = static_cast<char>(v);
    os.write(buf, len);
}

std::uint64_t read_varint(std::istream& is) {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int byte = is.get();
        GESMC_CHECK(byte != std::char_traits<char>::eof(), "binary edge list truncated");
        // The 10th byte (shift 63) has room for one data bit only; higher
        // bits would be shifted out silently.
        GESMC_CHECK(shift < 63 || (byte & 0x7E) == 0,
                    "binary edge list: varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) return v;
    }
    throw Error("binary edge list: varint longer than 64 bits");
}

} // namespace

void write_edge_list(std::ostream& os, const EdgeList& graph) {
    os << "# nodes " << graph.num_nodes() << " edges " << graph.num_edges() << '\n';
    for (std::uint64_t i = 0; i < graph.num_edges(); ++i) {
        const Edge e = graph.edge(i);
        os << e.u << ' ' << e.v << '\n';
    }
    GESMC_CHECK(os.good(), "edge list write failed");
}

void write_edge_list_file(const std::string& path, const EdgeList& graph) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_edge_list(os, graph);
}

EdgeList read_edge_list(std::istream& is) {
    std::vector<edge_key_t> keys;
    node_t declared_nodes = 0;
    node_t max_node = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line[0] == '%' || line[0] == '#') {
            std::istringstream header(line.substr(1));
            std::string word;
            while (header >> word) {
                if (word == "nodes") header >> declared_nodes;
            }
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t u = 0, v = 0;
        GESMC_CHECK(static_cast<bool>(fields >> u >> v), "malformed edge line: " + line);
        GESMC_CHECK(u <= kMaxNode && v <= kMaxNode, "node id exceeds 2^28-1");
        if (u == v) continue; // drop self-loops (paper's NetRep cleaning)
        keys.push_back(edge_key(static_cast<node_t>(u), static_cast<node_t>(v)));
        max_node = std::max({max_node, static_cast<node_t>(u), static_cast<node_t>(v)});
    }
    // Collapse multi-edges.
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    const node_t n = std::max<node_t>(declared_nodes, keys.empty() ? 0 : max_node + 1);
    return EdgeList::from_keys(n, std::move(keys));
}

EdgeList read_edge_list_file(const std::string& path) {
    std::ifstream is(path);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_edge_list(is);
}

// ------------------------------------------------------------------ binary

void write_edge_list_binary(std::ostream& os, const EdgeList& graph) {
    os.write(kBinaryMagic, sizeof(kBinaryMagic));
    os.put(static_cast<char>(kBinaryVersion));
    write_varint(os, graph.num_nodes());
    write_varint(os, graph.num_edges());
    const std::vector<edge_key_t> sorted = graph.sorted_keys();
    edge_key_t prev = 0;
    for (const edge_key_t key : sorted) {
        write_varint(os, key - prev);
        prev = key;
    }
    GESMC_CHECK(os.good(), "binary edge list write failed");
}

void write_edge_list_binary_file(const std::string& path, const EdgeList& graph) {
    std::ofstream os(path, std::ios::binary);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_edge_list_binary(os, graph);
}

EdgeList read_edge_list_binary(std::istream& is) {
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    GESMC_CHECK(is.gcount() == sizeof(magic) &&
                    std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0,
                "not a GESB binary edge list");
    const int version = is.get();
    GESMC_CHECK(version == kBinaryVersion,
                "unsupported GESB version: " + std::to_string(version));
    const std::uint64_t n = read_varint(is);
    GESMC_CHECK(n <= static_cast<std::uint64_t>(kMaxNode) + 1, "node count exceeds 2^28");
    const std::uint64_t m = read_varint(is);
    std::vector<edge_key_t> keys;
    // Don't trust the header's edge count for the allocation: a corrupt m
    // must fail as "truncated" below, not as a multi-exabyte reserve here.
    keys.reserve(std::min<std::uint64_t>(m, 1u << 20));
    edge_key_t prev = 0;
    for (std::uint64_t i = 0; i < m; ++i) {
        const std::uint64_t delta = read_varint(is);
        // Deltas of the sorted key sequence are strictly positive (key 0 is
        // the loop {0,0}, never a simple edge; a zero delta later would be a
        // duplicate).  Guard the sum against wrap-around too: wrapped keys
        // would break the strictly-increasing order that from_keys's
        // per-key validation cannot check.
        GESMC_CHECK(delta != 0, "binary edge list: duplicate or zero key");
        GESMC_CHECK(delta <= ~prev, "binary edge list: key overflows 64 bits");
        prev += delta;
        keys.push_back(prev);
    }
    // from_keys validates canonical form and node range.
    return EdgeList::from_keys(static_cast<node_t>(n), std::move(keys));
}

EdgeList read_edge_list_binary_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_edge_list_binary(is);
}

bool is_binary_edge_list(std::istream& is) {
    char magic[4] = {};
    const std::streampos pos = is.tellg();
    is.read(magic, sizeof(magic));
    const bool matched = is.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
                         std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0;
    is.clear();
    is.seekg(pos);
    return matched;
}

EdgeList read_any_edge_list_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    if (is_binary_edge_list(is)) return read_edge_list_binary(is);
    return read_edge_list(is);
}

// --------------------------------------------------------- degree sequence

void write_degree_sequence(std::ostream& os, const DegreeSequence& seq) {
    os << "# nodes " << seq.num_nodes() << '\n';
    for (const std::uint32_t d : seq.degrees()) os << d << '\n';
    GESMC_CHECK(os.good(), "degree sequence write failed");
}

void write_degree_sequence_file(const std::string& path, const DegreeSequence& seq) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open for writing: " + path);
    write_degree_sequence(os, seq);
}

DegreeSequence read_degree_sequence(std::istream& is) {
    std::vector<std::uint32_t> degrees;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '%' || line[0] == '#') continue;
        std::istringstream fields(line);
        std::uint64_t d = 0;
        while (fields >> d) {
            GESMC_CHECK(d <= kMaxNode, "degree exceeds max node count");
            degrees.push_back(static_cast<std::uint32_t>(d));
        }
        GESMC_CHECK(fields.eof(), "malformed degree line: " + line);
    }
    return DegreeSequence(std::move(degrees));
}

DegreeSequence read_degree_sequence_file(const std::string& path) {
    std::ifstream is(path);
    GESMC_CHECK(is.good(), "cannot open for reading: " + path);
    return read_degree_sequence(is);
}

} // namespace gesmc
