#include "graph/edge_list.hpp"

#include "util/check.hpp"

#include <algorithm>

namespace gesmc {

EdgeList EdgeList::from_pairs(node_t num_nodes, const std::vector<Edge>& pairs) {
    std::vector<edge_key_t> keys;
    keys.reserve(pairs.size());
    for (const Edge e : pairs) {
        GESMC_CHECK(!e.is_loop(), "loops are not allowed in simple graphs");
        GESMC_CHECK(e.u < num_nodes && e.v < num_nodes, "node id out of range");
        keys.push_back(edge_key(e));
    }
    return from_keys(num_nodes, std::move(keys));
}

EdgeList EdgeList::from_keys(node_t num_nodes, std::vector<edge_key_t> keys) {
    GESMC_CHECK(num_nodes <= kMaxNode + 1, "too many nodes for the 28-bit encoding");
    for (const edge_key_t k : keys) {
        const Edge e = edge_from_key(k);
        GESMC_CHECK(!e.is_loop(), "loops are not allowed in simple graphs");
        GESMC_CHECK(e.u < num_nodes && e.v < num_nodes, "node id out of range");
        GESMC_CHECK(e.u < e.v, "keys must be canonical");
    }
    EdgeList list;
    list.num_nodes_ = num_nodes;
    list.keys_ = std::move(keys);
    return list;
}

std::vector<std::uint32_t> EdgeList::degrees() const {
    std::vector<std::uint32_t> deg(num_nodes_, 0);
    for (const edge_key_t k : keys_) {
        const Edge e = edge_from_key(k);
        ++deg[e.u];
        ++deg[e.v];
    }
    return deg;
}

bool EdgeList::is_simple() const {
    for (const edge_key_t k : keys_) {
        if (key_is_loop(k)) return false;
    }
    std::vector<edge_key_t> sorted = sorted_keys();
    return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

double EdgeList::density() const noexcept {
    if (num_nodes_ < 2) return 0.0;
    const double pairs = 0.5 * static_cast<double>(num_nodes_) *
                         (static_cast<double>(num_nodes_) - 1.0);
    return static_cast<double>(keys_.size()) / pairs;
}

std::vector<edge_key_t> EdgeList::sorted_keys() const {
    std::vector<edge_key_t> sorted = keys_;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
}

bool EdgeList::same_graph(const EdgeList& other) const {
    return num_nodes_ == other.num_nodes_ && sorted_keys() == other.sorted_keys();
}

} // namespace gesmc
