/// \file metrics.hpp
/// \brief Structural graph metrics used as randomization proxies (§6.1).
///
/// The paper notes that aggregate measures (assortativity, clustering,
/// triangle count, ...) are *less sensitive* proxies for mixing than the
/// autocorrelation method — we implement them both as analysis tools and to
/// demonstrate exactly that in the examples.
#pragma once

#include "graph/adjacency.hpp"
#include "graph/edge_list.hpp"

#include <cstdint>

namespace gesmc {

/// Number of triangles (each counted once).
std::uint64_t triangle_count(const Adjacency& adj);

/// Global clustering coefficient: 3 * triangles / wedges; 0 if no wedges.
double global_clustering(const Adjacency& adj);

/// Mean local clustering coefficient (nodes of degree < 2 contribute 0).
double mean_local_clustering(const Adjacency& adj);

/// Pearson correlation of endpoint degrees over edges (degree
/// assortativity, Newman 2002). Returns 0 for degenerate variance.
double degree_assortativity(const EdgeList& graph);

/// Number of connected components (isolated nodes count).
std::uint64_t connected_components(const Adjacency& adj);

/// Size of the largest connected component.
std::uint64_t largest_component(const Adjacency& adj);

} // namespace gesmc
