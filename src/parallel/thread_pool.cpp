#include "parallel/thread_pool.hpp"

#include "util/check.hpp"

namespace gesmc {

namespace {
// Workers spin this many iterations for the next job before falling back to
// the condition variable. Fork-join phases arrive back to back inside a
// superstep (~10 dispatches each), so the common case is a hit within the
// spin window; the cv path only pays off between supersteps / benches.
constexpr unsigned kSpinIterations = 1 << 14;

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}
} // namespace

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(num_threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                                    : num_threads) {
    workers_.reserve(num_threads_ - 1);
    for (unsigned tid = 1; tid < num_threads_; ++tid) {
        workers_.emplace_back([this, tid] { worker_loop(tid); });
    }
}

ThreadPool::~ThreadPool() {
    {
        CheckedLockGuard lock(mutex_);
        stop_ = true;
        epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
    GESMC_CHECK(fn != nullptr, "null job");
    if (num_threads_ == 1) {
        fn(0);
        return;
    }
    {
        CheckedLockGuard lock(mutex_);
        job_ = &fn;
        active_.store(num_threads_ - 1, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_start_.notify_all();
    fn(0); // the caller participates as thread 0

    // Spin briefly for the stragglers, then sleep.
    for (unsigned spin = 0; spin < kSpinIterations; ++spin) {
        if (active_.load(std::memory_order_acquire) == 0) break;
        cpu_relax();
    }
    if (active_.load(std::memory_order_acquire) != 0) {
        CheckedUniqueLock lock(mutex_);
        cv_done_.wait(lock, [this] { return active_.load(std::memory_order_acquire) == 0; });
    }
    job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned tid) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        // Spin for the next epoch, then block on the cv.
        bool advanced = false;
        for (unsigned spin = 0; spin < kSpinIterations; ++spin) {
            if (epoch_.load(std::memory_order_acquire) != seen_epoch) {
                advanced = true;
                break;
            }
            cpu_relax();
        }
        const std::function<void(unsigned)>* job = nullptr;
        {
            CheckedUniqueLock lock(mutex_);
            if (!advanced) {
                cv_start_.wait(lock, [&] {
                    return epoch_.load(std::memory_order_acquire) != seen_epoch;
                });
            }
            seen_epoch = epoch_.load(std::memory_order_acquire);
            if (stop_) return;
            job = job_;
        }
        if (job) (*job)(tid);
        if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last worker done: wake the caller if it fell asleep.
            CheckedLockGuard lock(mutex_);
            cv_done_.notify_one();
        }
    }
}

} // namespace gesmc
