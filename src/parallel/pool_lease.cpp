#include "parallel/pool_lease.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

#include <algorithm>
#include <chrono>

namespace gesmc {

namespace {

/// budget.* metrics shared by every ThreadBudget in the process (batch runs
/// and the daemon have exactly one, so process-wide names are unambiguous;
/// a test creating several budgets just sums into the same counters).
struct BudgetMetrics {
    obs::Counter& leases =
        obs::MetricsRegistry::instance().counter("budget.leases.acquired");
    obs::Histogram& wait_us =
        obs::MetricsRegistry::instance().histogram("budget.lease_wait_us");
    obs::Gauge& leased_width =
        obs::MetricsRegistry::instance().gauge("budget.leased_width");
    obs::Gauge& waiting = obs::MetricsRegistry::instance().gauge("budget.waiting");
};

BudgetMetrics& budget_metrics() {
    static BudgetMetrics& m = *new BudgetMetrics();
    return m;
}

} // namespace

void PoolLease::release() noexcept {
    if (budget_ == nullptr) return;
    budget_->release(width_, std::move(pool_));
    budget_ = nullptr;
    width_ = 0;
}

ThreadBudget::ThreadBudget(unsigned total)
    : total_(total == 0 ? std::max(1u, std::thread::hardware_concurrency()) : total) {}

unsigned ThreadBudget::leased() const {
    CheckedLockGuard lock(mutex_);
    return leased_;
}

std::uint64_t ThreadBudget::waiting() const {
    CheckedLockGuard lock(mutex_);
    return next_ticket_ - now_serving_;
}

std::unique_ptr<ThreadPool> ThreadBudget::take_cached_pool_locked(unsigned width) {
    for (auto it = idle_pools_.begin(); it != idle_pools_.end(); ++it) {
        if ((*it)->num_threads() == width) {
            std::unique_ptr<ThreadPool> pool = std::move(*it);
            idle_pools_.erase(it);
            return pool;
        }
    }
    return nullptr;
}

PoolLease ThreadBudget::acquire(unsigned width) {
    GESMC_CHECK(width >= 1 && width <= total_,
                "thread budget: lease of width " + std::to_string(width) +
                    " outside [1, " + std::to_string(total_) + "]");
    std::unique_ptr<ThreadPool> pool;
    {
        const obs::TraceSpan span("lease.wait", "parallel", {{"width", width}});
        const bool measure = obs::metrics_enabled();
        const auto wait_start = measure ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point();
        CheckedUniqueLock lock(mutex_);
        const std::uint64_t ticket = next_ticket_++;
        if (measure) budget_metrics().waiting.set(static_cast<std::int64_t>(
            next_ticket_ - now_serving_));
        cv_.wait(lock, [&] {
            mutex_.assert_held();
            return ticket == now_serving_ && leased_ + width <= total_;
        });
        ++now_serving_;
        leased_ += width;
        if (measure) {
            BudgetMetrics& m = budget_metrics();
            m.leases.add(1);
            m.wait_us.record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - wait_start)
                    .count()));
            m.leased_width.set(leased_);
            m.waiting.set(static_cast<std::int64_t>(next_ticket_ - now_serving_));
        }
        if (width > 1) pool = take_cached_pool_locked(width);
    }
    // The next ticket may already fit alongside this one — wake the queue.
    cv_.notify_all();
    // Cache miss: spawn the pool *after* dropping the lock — thread
    // creation syscalls must not stall the machine-wide admission gate
    // (the width is already reserved, so the accounting stays exact).
    if (width > 1 && pool == nullptr) {
        try {
            pool = std::make_unique<ThreadPool>(width);
        } catch (...) {
            release(width, nullptr); // give the reserved width back
            throw;
        }
    }
    return PoolLease(this, width, std::move(pool));
}

std::optional<PoolLease> ThreadBudget::try_acquire(unsigned width) {
    GESMC_CHECK(width >= 1 && width <= total_,
                "thread budget: lease of width " + std::to_string(width) +
                    " outside [1, " + std::to_string(total_) + "]");
    std::unique_ptr<ThreadPool> pool;
    {
        CheckedLockGuard lock(mutex_);
        if (now_serving_ != next_ticket_ || leased_ + width > total_) {
            return std::nullopt;
        }
        leased_ += width;
        if (obs::metrics_enabled()) {
            BudgetMetrics& m = budget_metrics();
            m.leases.add(1);
            m.leased_width.set(leased_);
        }
        if (width > 1) pool = take_cached_pool_locked(width);
    }
    if (width > 1 && pool == nullptr) {
        try {
            pool = std::make_unique<ThreadPool>(width);
        } catch (...) {
            release(width, nullptr);
            throw;
        }
    }
    return PoolLease(this, width, std::move(pool));
}

void ThreadBudget::release(unsigned width, std::unique_ptr<ThreadPool> pool) noexcept {
    // Pools evicted beyond the cache bound; destroyed (threads joined)
    // outside the lock so a slow join never stalls the admission gate.
    std::vector<std::unique_ptr<ThreadPool>> evicted;
    {
        CheckedLockGuard lock(mutex_);
        leased_ -= width;
        if (obs::metrics_enabled()) budget_metrics().leased_width.set(leased_);
        if (pool != nullptr) idle_pools_.push_back(std::move(pool));
        // Bound the cache: parked pools may hold at most total_ worker
        // threads in sum, so a long-lived budget serving many widths over
        // time caps its idle footprint at one budget's worth of threads
        // instead of growing with every width ever leased.  Oldest first:
        // recently used widths are the likeliest to be leased again.
        unsigned cached = 0;
        for (const auto& idle : idle_pools_) cached += idle->num_threads();
        while (cached > total_ && !idle_pools_.empty()) {
            cached -= idle_pools_.front()->num_threads();
            evicted.push_back(std::move(idle_pools_.front()));
            idle_pools_.erase(idle_pools_.begin());
        }
    }
    cv_.notify_all();
    evicted.clear();
}

} // namespace gesmc
