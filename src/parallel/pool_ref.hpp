/// \file pool_ref.hpp
/// \brief Owning-or-borrowing handle to a ThreadPool.
///
/// Chains historically constructed a private pool from ChainConfig::threads.
/// The batch-sampling pipeline runs many chains against one machine-level
/// thread budget, so every parallel chain now holds a PoolRef: it either
/// owns a freshly spawned pool (the classic standalone behaviour) or
/// borrows an externally owned one (ChainConfig::shared_pool).  A borrowed
/// pool must outlive the handle, and — since ThreadPool::run is a single
/// fork-join job — at most one chain may execute on it at any moment; the
/// schedulers guarantee this by handing each chain an exclusively *leased*
/// pool carved out of the budget (parallel/pool_lease.hpp), released only
/// when the replicate is done.
#pragma once

#include "parallel/thread_pool.hpp"

#include <memory>

namespace gesmc {

class PoolRef {
public:
    /// Owns a new pool with `threads` workers (0 = hardware concurrency).
    explicit PoolRef(unsigned threads)
        : owned_(std::make_unique<ThreadPool>(threads)), pool_(owned_.get()) {}

    /// Borrows `shared`; the caller keeps ownership and must keep the pool
    /// alive for the lifetime of this handle.
    explicit PoolRef(ThreadPool& shared) noexcept : pool_(&shared) {}

    PoolRef(PoolRef&&) noexcept = default;
    PoolRef& operator=(PoolRef&&) noexcept = default;

    [[nodiscard]] bool owns_pool() const noexcept { return owned_ != nullptr; }

    [[nodiscard]] ThreadPool& operator*() const noexcept { return *pool_; }
    [[nodiscard]] ThreadPool* operator->() const noexcept { return pool_; }

private:
    std::unique_ptr<ThreadPool> owned_; ///< null when borrowing
    ThreadPool* pool_;
};

/// The chain constructors' one-liner: borrow `shared` when provided,
/// otherwise spawn a private pool with `threads` workers.
inline PoolRef make_pool_ref(ThreadPool* shared, unsigned threads) {
    return shared != nullptr ? PoolRef(*shared) : PoolRef(threads);
}

} // namespace gesmc
