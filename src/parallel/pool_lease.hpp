/// \file pool_lease.hpp
/// \brief Machine-wide thread budget with width-counted sub-pool leases.
///
/// The scheduling primitive behind hybrid K×T execution (pipeline and
/// sampling service): one ThreadBudget owns a machine-level budget of P
/// threads, and clients *lease* disjoint worker teams of width T out of it.
/// While a lease of width T is outstanding, T of the budget's threads are
/// spoken for — the leasing thread itself counts as one, the lease's
/// ThreadPool contributes the other T-1 — so K = ⌊P/T⌋ equally wide chains
/// can compute at once, or any mix of widths whose sum stays ≤ P.  This
/// replaces both the pipeline's single private pool and the service's
/// binary shared/unique pool gate: a T=4 chain and four T=1 replicates of
/// different jobs now run simultaneously inside one budget.
///
/// Admission is FIFO-fair: acquire() requests are granted strictly in
/// arrival order, so a wide request (an intra-chain chain wanting the whole
/// budget) cannot be starved by a stream of later width-1 requests — the
/// budget drains until the wide request fits, then fills back up.
///
/// Leased pools are cached and reused by width, so steady-state hybrid runs
/// never spawn threads per replicate.  A width-1 lease carries no pool at
/// all (ThreadPool(1) would run inline anyway); chains receive
/// chain_threads = 1 and shared_pool = nullptr, exactly the classic
/// replicate-parallel slot.
///
/// Lifetime: every PoolLease must be released (destroyed) before its
/// ThreadBudget is destroyed.
#pragma once

#include "check/checked_mutex.hpp"
#include "parallel/thread_pool.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace gesmc {

class ThreadBudget;

/// RAII handle to `width()` threads of a ThreadBudget.  Move-only; the
/// destructor returns the width (and the cached pool) to the budget.
class PoolLease {
public:
    PoolLease() = default;
    ~PoolLease() { release(); }

    PoolLease(const PoolLease&) = delete;
    PoolLease& operator=(const PoolLease&) = delete;
    PoolLease(PoolLease&& other) noexcept
        : budget_(other.budget_), width_(other.width_), pool_(std::move(other.pool_)) {
        other.budget_ = nullptr;
        other.width_ = 0;
    }
    PoolLease& operator=(PoolLease&& other) noexcept {
        if (this != &other) {
            release();
            budget_ = other.budget_;
            width_ = other.width_;
            pool_ = std::move(other.pool_);
            other.budget_ = nullptr;
            other.width_ = 0;
        }
        return *this;
    }

    /// Leased width; 0 for an empty (moved-from / default) lease.
    [[nodiscard]] unsigned width() const noexcept { return width_; }

    /// The leased fork-join pool of `width()` threads (the caller
    /// participates as thread 0), or nullptr when width() <= 1 — a
    /// single-threaded lease needs no pool.
    [[nodiscard]] ThreadPool* pool() const noexcept { return pool_.get(); }

    [[nodiscard]] explicit operator bool() const noexcept { return width_ > 0; }

    /// Returns the threads to the budget early (idempotent).
    void release() noexcept;

private:
    friend class ThreadBudget;
    PoolLease(ThreadBudget* budget, unsigned width,
              std::unique_ptr<ThreadPool> pool) noexcept
        : budget_(budget), width_(width), pool_(std::move(pool)) {}

    ThreadBudget* budget_ = nullptr;
    unsigned width_ = 0;
    std::unique_ptr<ThreadPool> pool_;
};

/// A budget of `total()` threads from which PoolLeases are carved.
class ThreadBudget {
public:
    /// `total` = 0 resolves to std::thread::hardware_concurrency().
    explicit ThreadBudget(unsigned total = 0);

    /// Destroys the cached idle pools.  All leases must be released first.
    ~ThreadBudget() = default;

    ThreadBudget(const ThreadBudget&) = delete;
    ThreadBudget& operator=(const ThreadBudget&) = delete;

    [[nodiscard]] unsigned total() const noexcept { return total_; }

    /// Outstanding leased width (0 when idle; never exceeds total()).
    [[nodiscard]] unsigned leased() const;

    /// acquire() calls currently queued (FIFO order).  Observability for
    /// tests and daemon status; racy by nature — a snapshot, not a fence.
    [[nodiscard]] std::uint64_t waiting() const;

    /// Blocks until `width` threads are free *and* every earlier acquire has
    /// been served (FIFO), then leases them.  Requires 1 <= width <= total().
    [[nodiscard]] PoolLease acquire(unsigned width);

    /// Non-blocking acquire: grants only when the lease fits *and* no older
    /// acquire() is still waiting (barging past a queued wide request would
    /// reintroduce the starvation FIFO exists to prevent).
    [[nodiscard]] std::optional<PoolLease> try_acquire(unsigned width);

private:
    friend class PoolLease;
    void release(unsigned width, std::unique_ptr<ThreadPool> pool) noexcept;
    /// Pops an idle cached pool of exactly `width`, or null on a cache
    /// miss — the caller spawns one *outside* the lock then.
    [[nodiscard]] std::unique_ptr<ThreadPool> take_cached_pool_locked(unsigned width)
        GESMC_REQUIRES(mutex_);

    const unsigned total_;

    mutable CheckedMutex mutex_{LockRank::kThreadBudget, "ThreadBudget"};
    CheckedCondVar cv_;
    unsigned leased_ GESMC_GUARDED_BY(mutex_) = 0;
    std::uint64_t next_ticket_ GESMC_GUARDED_BY(mutex_) = 0;  ///< issued to each acquire() on entry
    std::uint64_t now_serving_ GESMC_GUARDED_BY(mutex_) = 0;  ///< oldest unserved ticket
    /// Idle pools kept warm for reuse, keyed by exact width.
    std::vector<std::unique_ptr<ThreadPool>> idle_pools_ GESMC_GUARDED_BY(mutex_);
};

} // namespace gesmc
