/// \file thread_pool.hpp
/// \brief Persistent worker pool with fork-join parallel loops.
///
/// All parallel algorithms in the library (ParallelSuperstep, ParES,
/// ParGlobalES, NaiveParES, the parallel permutation sampler, generators)
/// run on this pool.  A pool with P threads executes jobs with thread ids
/// 0..P-1 where id 0 is the calling thread, so a pool with num_threads()==1
/// never context-switches — important for the sequential baselines to be
/// measured without pool overhead.
#pragma once

#include "check/checked_mutex.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace gesmc {

class ThreadPool {
public:
    /// Creates a pool that runs jobs on num_threads threads (including the
    /// caller). num_threads == 0 picks std::thread::hardware_concurrency().
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }

    /// Runs fn(thread_id) once on every thread of the pool and blocks until
    /// all invocations returned. fn must be safe to call concurrently.
    void run(const std::function<void(unsigned)>& fn);

    /// Statically chunked parallel loop over [begin, end): each thread
    /// receives one contiguous range. fn(thread_id, lo, hi).
    template <typename F>
    void for_chunks(std::uint64_t begin, std::uint64_t end, F&& fn) {
        const std::uint64_t n = end - begin;
        if (n == 0) return;
        const unsigned p = num_threads_;
        run([&](unsigned tid) {
            const std::uint64_t lo = begin + n * tid / p;
            const std::uint64_t hi = begin + n * (tid + 1) / p;
            if (lo < hi) fn(tid, lo, hi);
        });
    }

    /// Dynamically chunked parallel loop: threads grab chunks of `grain`
    /// items from a shared counter. Use for irregular per-item work.
    /// fn(thread_id, lo, hi).
    template <typename F>
    void for_chunks_dynamic(std::uint64_t begin, std::uint64_t end, std::uint64_t grain, F&& fn) {
        if (begin >= end) return;
        if (grain == 0) grain = 1;
        std::atomic<std::uint64_t> next{begin};
        run([&](unsigned tid) {
            for (;;) {
                const std::uint64_t lo = next.fetch_add(grain, std::memory_order_relaxed);
                if (lo >= end) break;
                fn(tid, lo, std::min(lo + grain, end));
            }
        });
    }

private:
    void worker_loop(unsigned tid);

    unsigned num_threads_;
    std::vector<std::thread> workers_;

    CheckedMutex mutex_{LockRank::kThreadPool, "ThreadPool"};
    CheckedCondVar cv_start_;
    CheckedCondVar cv_done_;
    /// Deliberately *not* GUARDED_BY(mutex_): run() clears it after the
    /// fork-join completes, synchronized by the active_ acq_rel handshake
    /// rather than the mutex (workers only read job_ under the lock, in an
    /// epoch where run() cannot be clearing it).
    const std::function<void(unsigned)>* job_ = nullptr;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> active_{0};
    bool stop_ GESMC_GUARDED_BY(mutex_) = false;
};

/// Reusable spinning barrier for phase synchronization *inside* a pool job
/// (e.g. between the rounds of ParallelSuperstep). Spin-then-yield keeps
/// latency low for the short phases typical of a superstep.
class SpinBarrier {
public:
    explicit SpinBarrier(unsigned parties) noexcept : parties_(parties) {}

    /// Blocks until all `parties` threads arrived; reusable across phases.
    void arrive_and_wait() noexcept {
        const std::uint64_t gen = generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            generation_.fetch_add(1, std::memory_order_release);
            return;
        }
        unsigned spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
            if (++spins > 1024) std::this_thread::yield();
        }
    }

private:
    const unsigned parties_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

} // namespace gesmc
