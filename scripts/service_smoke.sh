#!/usr/bin/env bash
# Service smoke test: start gesmc_serve, submit a job with gesmc_submit and
# byte-compare the streamed replicate graphs against a direct gesmc_sample
# run with the same config/seed; scrape one Prometheus exposition and
# validate it, assert the watch stream delivers monotone telemetry ticks
# through gesmc_top, and check the --telemetry-out NDJSON sink; then
# SIGTERM the daemon mid-job, assert a clean drain, restart it and resume
# the interrupted job to byte-identical outputs.  Run from the repo root
# with the build dir as $1 (default: build).  Used by CI in both the
# Release and ASan jobs.
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2> /dev/null; then
        kill -9 "$SERVE_PID" 2> /dev/null || true
    fi
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT

SERVE="$BUILD_DIR/gesmc_serve"
SUBMIT="$BUILD_DIR/gesmc_submit"
SAMPLE="$BUILD_DIR/gesmc_sample"
TOP="$BUILD_DIR/gesmc_top"
SOCKET="$WORK_DIR/gesmc.sock"

wait_for_socket() {
    for _ in $(seq 1 200); do
        if [ -S "$SOCKET" ]; then return 0; fi
        sleep 0.05
    done
    echo "service_smoke: daemon never bound $SOCKET" >&2
    return 1
}

start_daemon() {
    "$SERVE" --socket "$SOCKET" --threads 2 --max-jobs 2 \
        --telemetry-interval 50 --telemetry-out "$WORK_DIR/telemetry.ndjson" \
        --log-file "$WORK_DIR/events.ndjson" \
        2> "$WORK_DIR/serve.log" &
    SERVE_PID=$!
    wait_for_socket
}

# ---------------------------------------------------------------- phase 1
# Streamed graphs must be byte-identical to a direct run of the same config.
cat > "$WORK_DIR/job.cfg" <<EOF
input-kind    = generator
generator     = powerlaw
gen-n         = 2000
algorithm     = par-global-es
supersteps    = 6
replicates    = 4
seed          = 9
metrics       = false
output-format = binary
output-dir    = $WORK_DIR/daemon_out
EOF

echo "service_smoke: direct reference run"
"$SAMPLE" --config "$WORK_DIR/job.cfg" --set "output-dir=$WORK_DIR/direct" \
    --quiet > /dev/null

echo "service_smoke: starting daemon + submitting"
start_daemon
"$SUBMIT" --socket "$SOCKET" --config "$WORK_DIR/job.cfg" \
    --stream-dir "$WORK_DIR/stream" --quiet

count=0
for f in "$WORK_DIR"/direct/replicate_*.gesb; do
    cmp "$f" "$WORK_DIR/stream/$(basename "$f")"
    count=$((count + 1))
done
test "$count" -eq 4
echo "service_smoke: OK ($count streamed graphs byte-identical to the direct run)"

# ---------------------------------------------------------------- phase 2
# Live telemetry against the still-running daemon: a prom scrape must be a
# valid text exposition, the watch stream must deliver >= 2 ticks with
# strictly monotone timestamps (through gesmc_top --plain), the NDJSON
# sink must hold ordered parseable rows, and the event log must have
# narrated the phase-1 job.
echo "service_smoke: prom scrape"
"$SUBMIT" --socket "$SOCKET" --prom > "$WORK_DIR/prom.txt"
python3 scripts/check_prom_exposition.py "$WORK_DIR/prom.txt"

echo "service_smoke: watch stream via gesmc_top"
"$TOP" --socket "$SOCKET" --ticks 3 --plain > "$WORK_DIR/ticks.txt"
python3 - "$WORK_DIR/ticks.txt" <<'PY'
import sys

prev = -1
rows = 0
for line in open(sys.argv[1]):
    fields = line.split()
    ts = int(fields[fields.index("ts_ms") + 1])
    assert ts > prev, f"non-monotone ts_ms: {ts} after {prev}"
    prev = ts
    rows += 1
assert rows >= 2, f"expected >= 2 watch ticks, got {rows}"
print(f"service_smoke: OK ({rows} watch ticks, strictly monotone ts_ms)")
PY

python3 - "$WORK_DIR/telemetry.ndjson" <<'PY'
import json
import sys

rows = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert rows, "no telemetry NDJSON rows"
seqs = [row["seq"] for row in rows]
assert seqs == sorted(seqs), "telemetry rows out of order"
for row in rows:
    for name, rate in row["rates"].items():
        assert rate >= 0, f"negative rate {name}={rate}"
print(f"service_smoke: OK ({len(rows)} telemetry rows, non-negative rates)")
PY

grep -q '"event": "job_accepted"' "$WORK_DIR/events.ndjson"
grep -q '"event": "job_done"' "$WORK_DIR/events.ndjson"
echo "service_smoke: OK (event log narrated the job lifecycle)"

# ---------------------------------------------------------------- phase 3
# SIGTERM mid-job: the daemon drains (checkpoint + exit 0); a restarted
# daemon resumes the job to outputs byte-identical to an uninterrupted run.
cat > "$WORK_DIR/long.cfg" <<EOF
input-kind       = generator
generator        = powerlaw
gen-n            = 3000
algorithm        = par-global-es
supersteps       = 12
replicates       = 4
seed             = 21
metrics          = false
output-format    = binary
checkpoint-every = 2
output-dir       = $WORK_DIR/drain_out
EOF

echo "service_smoke: direct reference for the drained job"
"$SAMPLE" --config "$WORK_DIR/long.cfg" --set "output-dir=$WORK_DIR/direct2" \
    --set checkpoint-every=0 --quiet > /dev/null

echo "service_smoke: submitting long job, SIGTERM once the first checkpoint lands"
"$SUBMIT" --socket "$SOCKET" --config "$WORK_DIR/long.cfg" --quiet \
    > /dev/null 2> /dev/null &
submit_pid=$!
for _ in $(seq 1 600); do
    if ls "$WORK_DIR/drain_out/checkpoints/"*.gesc > /dev/null 2>&1; then break; fi
    if ! kill -0 "$submit_pid" 2> /dev/null; then break; fi # job won the race
    sleep 0.05
done
kill -TERM "$SERVE_PID"
serve_rc=0
wait "$SERVE_PID" || serve_rc=$?
SERVE_PID=""
test "$serve_rc" -eq 0 # drain must be clean, not a crash/kill
# The client sees either "interrupted" (exit 1) or, if the job won the
# race, "succeeded" (exit 0); both are orderly ends.
wait "$submit_pid" || true
echo "service_smoke: daemon drained cleanly (exit 0)"

echo "service_smoke: restarting daemon and resuming the job"
start_daemon
"$SUBMIT" --socket "$SOCKET" --config "$WORK_DIR/long.cfg" \
    --set "resume-from=$WORK_DIR/drain_out" --quiet

count=0
for f in "$WORK_DIR"/direct2/replicate_*.gesb; do
    cmp "$f" "$WORK_DIR/drain_out/$(basename "$f")"
    count=$((count + 1))
done
test "$count" -eq 4
echo "service_smoke: OK ($count replicates byte-identical after drain + resume)"

"$SUBMIT" --socket "$SOCKET" --shutdown > /dev/null
serve_rc=0
wait "$SERVE_PID" || serve_rc=$?
SERVE_PID=""
test "$serve_rc" -eq 0
echo "service_smoke: OK (protocol shutdown exits 0)"
