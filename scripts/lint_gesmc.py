#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Usage:
    lint_gesmc.py [REPO_ROOT]

Exit status is non-zero when any rule fires.  Rules (see
docs/static_analysis.md for the rationale behind each):

  determinism   Non-deterministic entropy/time sources are banned in the
                deterministic sampling paths (src/core, src/rng, src/gen,
                src/graph, src/hashing).  Every random draw must come from
                the counter-based RNG so runs are replayable byte-for-byte.

  raw-mutex     `std::mutex` & friends are banned outside src/check/: all
                locking goes through CheckedMutex so the Clang
                thread-safety analysis and the lock-rank detector see it.

  spinlock      `std::atomic_flag` is banned outside src/check/ and
                src/hashing/: it is the raw material of hand-rolled
                spinlocks that neither the thread-safety analysis nor the
                lock-rank detector can see.  The hashing layer's bucket
                words embed their own spin protocols (audited there); any
                other spinning belongs behind a CheckedMutex.

  iostream      `#include <iostream>` is banned in library code (src/
                except src/bench_util): it drags in static constructors
                and tempts ad-hoc stderr chatter in hot paths.  Tools own
                their stdout; the library reports through Error/metrics.

Suppress a finding by appending `// lint: allow(<rule>)` to the line.
"""

import pathlib
import re
import sys

CXX_SUFFIXES = {".cpp", ".hpp"}

DETERMINISTIC_DIRS = ("src/core", "src/rng", "src/gen", "src/graph",
                      "src/hashing")

DETERMINISM_PATTERNS = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"\bstd::m?t19937"),          # seed via rng/, not ad hoc
    re.compile(r"\bstd::rand\b"),
    re.compile(r"(^|[^\w:.])s?rand\s*\("),
    re.compile(r"(^|[^\w:.])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
]

RAW_MUTEX_PATTERN = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

SPINLOCK_PATTERN = re.compile(r"\bstd::atomic_flag\b")

IOSTREAM_PATTERN = re.compile(r"^\s*#\s*include\s*<iostream>")

ALLOW_PATTERN = re.compile(r"//\s*lint:\s*allow\((?P<rule>[\w-]+)\)")


def suppressed(line: str, rule: str) -> bool:
    match = ALLOW_PATTERN.search(line)
    return match is not None and match.group("rule") == rule


def strip_comments(line: str) -> str:
    """Drop // comments so prose mentioning a pattern does not fire."""
    return line.split("//", 1)[0]


def check_file(root: pathlib.Path, path: pathlib.Path, findings: list) -> None:
    rel = path.relative_to(root).as_posix()
    in_deterministic = rel.startswith(DETERMINISTIC_DIRS)
    in_check = rel.startswith("src/check/")
    in_hashing = rel.startswith("src/hashing/")
    in_bench_util = rel.startswith("src/bench_util/")
    in_library = rel.startswith("src/")

    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
        line = strip_comments(raw)

        if in_deterministic:
            for pattern in DETERMINISM_PATTERNS:
                if pattern.search(line) and not suppressed(raw, "determinism"):
                    findings.append(
                        (rel, lineno, "determinism",
                         "non-deterministic source in a sampling path: "
                         + raw.strip()))

        if not in_check and RAW_MUTEX_PATTERN.search(line) \
                and not suppressed(raw, "raw-mutex"):
            findings.append(
                (rel, lineno, "raw-mutex",
                 "use CheckedMutex/CheckedLockGuard (src/check/): "
                 + raw.strip()))

        if not in_check and not in_hashing \
                and SPINLOCK_PATTERN.search(line) \
                and not suppressed(raw, "spinlock"):
            findings.append(
                (rel, lineno, "spinlock",
                 "std::atomic_flag spinlocks are invisible to the lock "
                 "checkers; use CheckedMutex (src/check/): " + raw.strip()))

        if in_library and not in_bench_util \
                and IOSTREAM_PATTERN.search(line) \
                and not suppressed(raw, "iostream"):
            findings.append(
                (rel, lineno, "iostream",
                 "<iostream> is banned in library code: " + raw.strip()))


def main(argv: list) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(".")
    root = root.resolve()

    scanned = 0
    findings = []
    for top in ("src", "tools"):
        for path in sorted((root / top).rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                scanned += 1
                check_file(root, path, findings)

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint_gesmc: {len(findings)} finding(s) in {scanned} files",
              file=sys.stderr)
        return 1
    print(f"lint_gesmc: OK ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
