#!/usr/bin/env bash
# Resume smoke test: kill a checkpointing gesmc_sample run mid-way, resume
# it, and require the resumed outputs to be byte-identical to an
# uninterrupted run.  Run from the repo root with the build dir as $1
# (default: build).  Used by CI in both the Release and ASan jobs.
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

# keep-checkpoints: if the "interrupted" run wins the race and completes,
# the default cleanup would delete the very checkpoints the resume reads.
SAMPLE="$BUILD_DIR/gesmc_sample"
ARGS=(--gen powerlaw --set gen-n=3000 --replicates 6 --supersteps 12
      --seed 7 --checkpoint-every 2 --set keep-checkpoints=true --quiet)

echo "resume_smoke: reference (uninterrupted) run"
"$SAMPLE" "${ARGS[@]}" --output-dir "$WORK_DIR/ref" > /dev/null

echo "resume_smoke: interrupted run (SIGKILL once the first checkpoint lands)"
"$SAMPLE" "${ARGS[@]}" --output-dir "$WORK_DIR/res" > /dev/null &
pid=$!
for _ in $(seq 1 600); do
    if ls "$WORK_DIR/res/checkpoints/"*.gesc > /dev/null 2>&1; then break; fi
    if ! kill -0 "$pid" 2> /dev/null; then break; fi # run finished already
    sleep 0.05
done
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

# If the kill landed mid-run, some replicates are finished, some in-flight,
# some unstarted; if the run won the race and completed, the resume below
# degenerates to a skip-everything pass — the comparison must hold either way.
echo "resume_smoke: resuming"
"$SAMPLE" "${ARGS[@]}" --resume "$WORK_DIR/res" > /dev/null

echo "resume_smoke: comparing outputs"
count=0
for f in "$WORK_DIR"/ref/replicate_*.txt; do
    cmp "$f" "$WORK_DIR/res/$(basename "$f")"
    count=$((count + 1))
done
test "$count" -eq 6
echo "resume_smoke: OK ($count replicates byte-identical after resume)"
