#!/usr/bin/env python3
"""Bench regression gate: diff a fresh gesmc-bench-v1 JSON against a baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.10]

Compares median_seconds per benchmark name.  Exits non-zero when any
benchmark present in both files regressed by more than the threshold
(fresh > baseline * (1 + threshold)).

Host awareness: absolute medians are only comparable on the same machine
class.  When the two files carry different host fingerprints (CI containers
land on heterogeneous hardware), the gate downgrades to informational — it
prints the comparison but always exits 0.  To refresh a baseline, rerun the
bench with --bench-json on the reference host and commit the file.

Schema (written by src/bench_util/harness.cpp, docs/observability.md):
    {"schema": "gesmc-bench-v1", "bench": ..., "host": {"fingerprint": ...},
     "results": [{"name": ..., "median_seconds": ..., ...}]}
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "gesmc-bench-v1":
        sys.exit(f"{path}: not a gesmc-bench-v1 document "
                 f"(schema={doc.get('schema')!r})")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative median slowdown (default 0.10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    base_fp = baseline.get("host", {}).get("fingerprint", "")
    fresh_fp = fresh.get("host", {}).get("fingerprint", "")
    same_host = bool(base_fp) and base_fp == fresh_fp
    if not same_host:
        print("NOTICE: host fingerprints differ — comparison is informational "
              "only, exit is forced to 0")
        print(f"  baseline: {base_fp or '(none)'}")
        print(f"  fresh:    {fresh_fp or '(none)'}")

    base_by_name = {r["name"]: r for r in baseline.get("results", [])}
    fresh_by_name = {r["name"]: r for r in fresh.get("results", [])}

    regressions = []
    missing = sorted(set(base_by_name) - set(fresh_by_name))
    print(f"{'benchmark':44s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}")
    for name in sorted(set(base_by_name) & set(fresh_by_name)):
        base_s = base_by_name[name]["median_seconds"]
        fresh_s = fresh_by_name[name]["median_seconds"]
        if base_s <= 0:
            continue
        rel = fresh_s / base_s - 1.0
        marker = ""
        if rel > args.threshold:
            marker = "  REGRESSED"
            regressions.append((name, rel))
        print(f"{name:44s} {base_s:12.3e} {fresh_s:12.3e} {rel:+7.1%}{marker}")
    for name in missing:
        print(f"{name:44s} {'':12s} {'':12s}  MISSING from fresh run")

    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from the fresh "
              "run — did a benchmark get renamed without refreshing the "
              "baseline?")
    if regressions:
        worst = max(rel for _, rel in regressions)
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} (worst {worst:+.1%})")

    if not same_host:
        return 0
    return 1 if (regressions or missing) else 0


if __name__ == "__main__":
    sys.exit(main())
