#!/usr/bin/env python3
"""Validate a Prometheus text exposition (format v0.0.4).

Usage:
    check_prom_exposition.py [FILE]        # default: stdin

Checks the output of `gesmc_submit --prom` / `gesmc_sample --metrics-prom`
(written by src/obs/timeseries.cpp):

  * every line is a `# HELP`/`# TYPE` comment or a sample
    `name[{labels}] value`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and carry the gesmc_
    prefix;
  * every sample belongs to a family announced by a preceding `# TYPE`
    with a known type (counter|gauge|summary|histogram|untyped), declared
    at most once;
  * sample values parse as floats (NaN/+Inf/-Inf included);
  * counters are non-negative.

Exits non-zero listing every violation; prints a one-line summary on
success.  Used by scripts/service_smoke.sh and the CI lint job.
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
LABELS_RE = re.compile(
    r'\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)?\}$'
)
KNOWN_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
# A summary family's samples may use these suffixes on the declared name.
FAMILY_SUFFIXES = ("_sum", "_count", "_bucket")


def parse_value(text):
    if text in ("NaN", "+Inf", "-Inf", "Inf"):
        return float(text.replace("Inf", "inf"))
    return float(text)


def family_of(name, types):
    if name in types:
        return name
    for suffix in FAMILY_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check(lines):
    errors = []
    types = {}
    samples = 0

    def err(lineno, message):
        errors.append(f"line {lineno}: {message}")

    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                err(lineno, f"malformed comment: {line!r}")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                err(lineno, f"bad metric name in comment: {name!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in KNOWN_TYPES:
                    err(lineno, f"unknown metric type: {line!r}")
                    continue
                if name in types:
                    err(lineno, f"duplicate TYPE for {name}")
                    continue
                types[name] = parts[3]
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            err(lineno, f"malformed sample: {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels")
        if labels and not LABELS_RE.match(labels):
            err(lineno, f"malformed labels: {labels!r}")
            continue
        if not name.startswith("gesmc_"):
            err(lineno, f"sample without the gesmc_ prefix: {name!r}")
        family = family_of(name, types)
        if family is None:
            err(lineno, f"sample without a preceding # TYPE: {name!r}")
            continue
        try:
            value = parse_value(match.group("value"))
        except ValueError:
            err(lineno, f"unparseable value: {match.group('value')!r}")
            continue
        if types[family] == "counter" and value < 0:
            err(lineno, f"negative counter: {line!r}")
        samples += 1

    if not errors and samples == 0:
        errors.append("no samples found (empty exposition)")
    return errors, samples, len(types)


def main():
    if len(sys.argv) > 2:
        sys.exit(__doc__.splitlines()[2].strip())
    if len(sys.argv) == 2 and sys.argv[1] != "-":
        with open(sys.argv[1], encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = sys.stdin.readlines()

    errors, samples, families = check(lines)
    for error in errors:
        print(f"check_prom_exposition: {error}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"check_prom_exposition: OK ({samples} samples, "
          f"{families} families)")


if __name__ == "__main__":
    main()
