#!/usr/bin/env bash
# Adaptive-budget smoke test (docs/adaptive.md): on a fast-mixing G(n,p)
# every replicate must stop on the ESS verdict well below the cap, and a
# SIGKILLed adaptive run must resume to byte-identical outputs — i.e. the
# estimator sidecars (.gesa) restore the stop decision exactly.  Run from
# the repo root with the build dir as $1 (default: build).  Used by CI in
# both the Release and ASan jobs.
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

SAMPLE="$BUILD_DIR/gesmc_sample"
ARGS=(--gen gnp --set gen-n=2000 --set gen-m=8000 --replicates 4
      --supersteps adaptive --max-supersteps 200 --seed 7
      --checkpoint-every 4 --set keep-checkpoints=true --quiet)

echo "adaptive_smoke: reference (uninterrupted) adaptive run"
"$SAMPLE" "${ARGS[@]}" --output-dir "$WORK_DIR/ref" \
    --report "$WORK_DIR/ref/report.json" > /dev/null

echo "adaptive_smoke: checking the stop verdicts"
python3 - "$WORK_DIR/ref/report.json" << 'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
replicates = report["replicates"]
assert len(replicates) == 4, f"expected 4 replicates, got {len(replicates)}"
for r in replicates:
    assert r["stop_reason"] == "ess-target", \
        f"replicate {r['replicate']}: stop_reason={r['stop_reason']!r}"
    assert r["realized_supersteps"] < 200, \
        f"replicate {r['replicate']}: no supersteps saved"
    assert r["mixing"]["ess"] >= 32, \
        f"replicate {r['replicate']}: ess={r['mixing']['ess']}"
print("adaptive_smoke: all replicates stopped on ess-target at",
      sorted(r["realized_supersteps"] for r in replicates), "of 200 supersteps")
EOF

echo "adaptive_smoke: interrupted run (SIGKILL once the first checkpoint lands)"
"$SAMPLE" "${ARGS[@]}" --output-dir "$WORK_DIR/res" > /dev/null &
pid=$!
for _ in $(seq 1 600); do
    if ls "$WORK_DIR/res/checkpoints/"*.gesc > /dev/null 2>&1; then break; fi
    if ! kill -0 "$pid" 2> /dev/null; then break; fi # run finished already
    sleep 0.05
done
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

# A kill can land between the .gesc write and its .gesa sidecar; the resume
# contract says such a replicate reruns fresh — the bytes must match either
# way.
echo "adaptive_smoke: resuming"
"$SAMPLE" "${ARGS[@]}" --resume "$WORK_DIR/res" > /dev/null

echo "adaptive_smoke: comparing outputs"
count=0
for f in "$WORK_DIR"/ref/replicate_*.txt; do
    cmp "$f" "$WORK_DIR/res/$(basename "$f")"
    count=$((count + 1))
done
test "$count" -eq 4
echo "adaptive_smoke: OK ($count replicates byte-identical after resume)"
