#!/usr/bin/env bash
# Corpus smoke test: build a glob corpus of generated graphs, then
#   1. reference corpus run (uninterrupted) with a merged summary;
#   2. SIGKILL a checkpointing corpus run mid-way, resume it, and require
#      every per-graph replicate to be byte-identical to the reference;
#   3. sanity-check the merged corpus summary JSON (rows, aggregates);
#   4. submit the same corpus to a live gesmc_serve daemon with
#      `gesmc_submit --corpus` and byte-compare the daemon-side outputs and
#      the client-merged summary against the reference.
# Run from the repo root with the build dir as $1 (default: build).  Used
# by CI in both the Release and ASan jobs.
set -euo pipefail

BUILD_DIR="${1:-build}"
WORK_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2> /dev/null; then
        kill -9 "$SERVE_PID" 2> /dev/null || true
    fi
    rm -rf "$WORK_DIR"
}
trap cleanup EXIT

SAMPLE="$BUILD_DIR/gesmc_sample"
SERVE="$BUILD_DIR/gesmc_serve"
SUBMIT="$BUILD_DIR/gesmc_submit"
SOCKET="$WORK_DIR/gesmc.sock"

echo "corpus_smoke: generating 3 input graphs"
for s in 1 2 3; do
    "$SAMPLE" --gen powerlaw --set gen-n=1200 --replicates 1 --supersteps 1 \
        --seed "$s" --set "output-prefix=g$s" --output-format binary \
        --output-dir "$WORK_DIR/inputs" --quiet > /dev/null
done
inputs=("$WORK_DIR"/inputs/g*_0.gesb)
test "${#inputs[@]}" -eq 3

CORPUS_ARGS=(--glob "$WORK_DIR/inputs/g*_0.gesb" --algo par-global-es
             --replicates 4 --supersteps 10 --seed 11 --threads 2
             --set metrics=true --output-format binary --checkpoint-every 2
             --set keep-checkpoints=true --quiet)

echo "corpus_smoke: reference (uninterrupted) corpus run"
"$SAMPLE" "${CORPUS_ARGS[@]}" --output-dir "$WORK_DIR/ref" \
    --report "$WORK_DIR/ref/corpus.json" > /dev/null

echo "corpus_smoke: interrupted corpus run (SIGKILL once a checkpoint lands)"
"$SAMPLE" "${CORPUS_ARGS[@]}" --output-dir "$WORK_DIR/res" \
    --report "$WORK_DIR/res/corpus.json" > /dev/null &
pid=$!
for _ in $(seq 1 600); do
    if ls "$WORK_DIR"/res/g*/checkpoints/*.gesc > /dev/null 2>&1; then break; fi
    if ! kill -0 "$pid" 2> /dev/null; then break; fi # run finished already
    sleep 0.05
done
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

# If the kill landed mid-run, some (graph, replicate) cells are finished,
# some in-flight, some unstarted — possibly whole graphs untouched; if the
# run won the race, the resume degenerates to a skip-everything pass.  The
# byte comparison must hold either way.
echo "corpus_smoke: resuming the corpus"
"$SAMPLE" "${CORPUS_ARGS[@]}" --output-dir "$WORK_DIR/res" \
    --report "$WORK_DIR/res/corpus.json" --resume "$WORK_DIR/res" > /dev/null

echo "corpus_smoke: comparing per-graph outputs"
count=0
for f in "$WORK_DIR"/ref/g*/replicate_*.gesb; do
    rel="${f#"$WORK_DIR"/ref/}"
    cmp "$f" "$WORK_DIR/res/$rel"
    count=$((count + 1))
done
test "$count" -eq 12
echo "corpus_smoke: OK ($count replicates byte-identical after kill + resume)"

echo "corpus_smoke: merged summary sanity"
python3 - "$WORK_DIR/ref/corpus.json" "$WORK_DIR/res/corpus.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    doc = json.load(open(path))
    rows = doc["graphs"]
    assert doc["corpus"]["graphs"] == 3, path
    assert len(rows) == 3, path
    assert all(r["failed"] == 0 and r["interrupted"] == 0 for r in rows), path
    seeds = {r["seed"] for r in rows}
    assert len(seeds) == 3, path  # derived per-graph seeds are distinct
    agg = doc["aggregates"]
    for key in ("seconds", "switches_per_second", "acceptance_rate",
                "mean_triangles"):
        a = agg[key]
        assert a["min"] <= a["median"] <= a["max"], (path, key)
# The two summaries agree on everything but timings.
ref, res = (json.load(open(p)) for p in sys.argv[1:])
for a, b in zip(ref["graphs"], res["graphs"]):
    for key in ("name", "seed", "nodes", "edges", "replicates",
                "acceptance_rate"):
        assert a[key] == b[key], key
print("corpus_smoke: summaries OK")
EOF

# ---------------------------------------------------------------- daemon
echo "corpus_smoke: starting daemon + gesmc_submit --corpus"
"$SERVE" --socket "$SOCKET" --threads 2 --max-jobs 2 2> "$WORK_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 200); do
    if [ -S "$SOCKET" ]; then break; fi
    sleep 0.05
done
test -S "$SOCKET"

"$SUBMIT" --socket "$SOCKET" --corpus --quiet \
    --set "input-glob=$WORK_DIR/inputs/g*_0.gesb" \
    --set algorithm=par-global-es --set replicates=4 --set supersteps=10 \
    --set seed=11 --set metrics=true --set output-format=binary \
    --set "output-dir=$WORK_DIR/svc" --set "report=$WORK_DIR/svc/corpus.json" \
    > /dev/null

count=0
for f in "$WORK_DIR"/ref/g*/replicate_*.gesb; do
    rel="${f#"$WORK_DIR"/ref/}"
    cmp "$f" "$WORK_DIR/svc/$rel"
    count=$((count + 1))
done
test "$count" -eq 12
python3 - "$WORK_DIR/ref/corpus.json" "$WORK_DIR/svc/corpus.json" <<'EOF'
import json, sys
ref, svc = (json.load(open(p)) for p in sys.argv[1:])
for a, b in zip(ref["graphs"], svc["graphs"]):
    for key in ("name", "seed", "nodes", "edges", "replicates",
                "acceptance_rate"):
        assert a[key] == b[key], key
    assert abs(a["metrics"]["mean_triangles"] - b["metrics"]["mean_triangles"]) < 1e-9
print("corpus_smoke: service summary matches the local one")
EOF
echo "corpus_smoke: OK ($count daemon-side replicates byte-identical)"

"$SUBMIT" --socket "$SOCKET" --shutdown > /dev/null
serve_rc=0
wait "$SERVE_PID" || serve_rc=$?
SERVE_PID=""
test "$serve_rc" -eq 0
echo "corpus_smoke: OK (daemon shutdown clean)"
