#!/usr/bin/env bash
# Fix5 re-record protocol, one command: run bench_pipeline_policies and
# print kReference-ready C++ rows to paste into
# bench/bench_pipeline_policies.cpp (the recorded reference table).  Rows
# carry {algorithm, P, ceiling, sequential_s, replicates_s, intra_chain_s,
# hybrid_s} — hybrid is the balanced K x T point at T = max(2, P/2).  Run
# on a >= 8-core box to capture the real replicate- vs intra-chain vs
# hybrid spread the ROADMAP asks for; run from the repo root with the
# build dir as $1 (default: build).
#
# While on that box, also refresh bench/baselines/BENCH_adaptive.json
# (build/bench_adaptive --repetitions=3 --bench-json=...): the committed
# adaptive-vs-fixed medians come from the same 1-hw-thread CI container as
# kReference, so the fixed/adaptive wall-clock ratio at real parallelism is
# still unrecorded.
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench_pipeline_policies"
if [ ! -x "$BENCH" ]; then
    echo "record_policy_reference: $BENCH not built (cmake --build $BUILD_DIR)" >&2
    exit 2
fi

OUT="$("$BENCH")"

echo "# Measured on: $(uname -srm), $(nproc) hardware threads, $(date -u +%Y-%m-%d)"
echo "# Paste over the kReference rows in bench/bench_pipeline_policies.cpp"
echo "# (update the 'Recorded ...' comment line alongside):"
echo "constexpr ReferenceRow kReference[] = {"
printf '%s\n' "$OUT" | awk '/^kReference-row: /{ sub(/^kReference-row: /, ""); print "    " $0 }'
echo "};"
