/// \file gesmc_sample.cpp
/// \brief Batch sampler CLI: config-driven multi-replicate orchestration.
///
/// Runs R independent replicates of an edge-switching Markov chain on one
/// input graph — or on a whole *corpus* of input graphs — scheduled over a
/// shared thread budget, and writes one output graph per replicate plus a
/// machine-readable JSON report.  This is the null-model workhorse:
/// motif/significance analyses need hundreds of randomized replicates per
/// input, and this tool produces them in one reproducible invocation.
///
///   gesmc_sample --config run.cfg
///   gesmc_sample --input g.txt --replicates 64 --output-dir out --report out/run.json
///   gesmc_sample --config run.cfg --set threads=16 --set policy=replicates
///   gesmc_sample --config run.cfg --output-dir out --checkpoint-every 10
///   gesmc_sample --config run.cfg --resume out        # after an interruption
///   gesmc_sample --glob 'data/*.gesb' --replicates 16 --output-dir out/corpus
///
/// A config naming several inputs (input list, --glob/--manifest/--corpus)
/// runs as a corpus: per-graph shards with derived seeds under one thread
/// budget, merged into a corpus summary (docs/corpus.md).  Every option is
/// a config key (see src/pipeline/config.hpp); CLI flags override file
/// entries in command-line order.
#include "check/checked_mutex.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "pipeline/config.hpp"
#include "pipeline/corpus.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "util/check.hpp"
#include "util/format.hpp"
#include "util/signal_interrupt.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

using namespace gesmc;

namespace {

constexpr const char* kUsage = R"(gesmc_sample — batch sampling of simple graphs with prescribed degrees

Config:
  --config FILE       read "key = value" pipeline config (see examples/)
  --set KEY=VALUE     override any config key (repeatable)

Shortcuts (equivalent to --set):
  --input FILE        edge list (text or GESB binary); several paths make
                      the run a corpus (one shard per graph, derived seeds)
  --degrees FILE      degree-sequence input (realized via init method)
  --gen KIND          generator input: powerlaw | gnp | grid | regular
  --glob PATTERN      corpus input: every file matching PATTERN (sorted;
                      quote it so the shell does not expand)
  --manifest FILE     corpus input: manifest of paths ("path [:: name]")
  --corpus SPEC       synthetic corpus: test | bench |
                      "powerlaw n=.. gamma=.. count=.." | "gnp n=.. m=.. count=.."
  --algo NAME         seq-es | seq-global-es | par-es | par-global-es |
                      naive-par-es | adj-list-es
  --replicates R      independent replicates to sample
  --supersteps K      supersteps per replicate, or "adaptive" to stop each
                      replicate once its mixing estimate clears the target
                      (docs/adaptive.md; tune with the five flags below)
  --ess-target E      adaptive: effective sample size to reach        [32]
  --mixing-tau F      adaptive: max non-independent edge fraction     [0.2]
  --min-supersteps N  adaptive: never stop before N supersteps        [8]
  --max-supersteps N  adaptive: hard budget cap                       [200]
  --check-every N     adaptive: verdict cadence in supersteps         [2]
  --seed S            master seed (replicate seeds are derived)
  --threads P         machine-level thread budget, 0 = hardware concurrency
  --policy NAME       auto | replicates | intra-chain | hybrid
  --chain-threads T   threads leased per chain (hybrid K x T; 0 = derive)
  --max-concurrent K  cap on replicates computing at once (0 = budget/T)
  --edge-set-backend B  concurrent edge-set implementation for the parallel
                      chains: locked | lockfree (byte-identical outputs)
  --output-dir DIR    write one graph per replicate into DIR
  --output-format F   text | binary
  --report FILE       write the JSON run report to FILE (corpus runs: the
                      merged corpus summary; per-graph reports land in each
                      graph's output subdirectory)
  --checkpoint-every N  persist per-replicate chain state (.gesc) every N
                      supersteps under <output-dir>/checkpoints
  --resume DIR        resume an interrupted run from DIR's checkpoints:
                      finished replicates are skipped, in-flight ones
                      continue from their (seed, counter) pair; outputs go
                      back into DIR unless --output-dir says otherwise
                      (pass the same config as the interrupted run)
  --progress          print a live line as each replicate finishes
  --quiet             suppress progress output

Observability (docs/observability.md):
  --metrics           collect runtime counters (switch outcomes, lease waits,
                      probe lengths); embedded as "obs_metrics" in the report
  --metrics-out FILE  write the metrics snapshot to FILE (implies --metrics)
  --metrics-prom FILE write the final metrics snapshot as a Prometheus text
                      exposition (v0.0.4) to FILE (implies --metrics) — for
                      node_exporter's textfile collector
  --telemetry-out FILE
                      run a background telemetry sampler during the run and
                      append one NDJSON time-series row per second to FILE
                      (implies --metrics; tail -f-able; schema in
                      docs/observability.md)
  --trace FILE        record a Chrome trace_event timeline (supersteps,
                      lease waits, checkpoints) to FILE — load it in
                      chrome://tracing or Perfetto
  --help              this text
)";

/// --progress: stream replicate completions as they happen (RunObserver)
/// instead of waiting for the final report.  Callbacks may fire from pool
/// threads concurrently -> one mutex around the shared line.
class ProgressPrinter final : public RunObserver {
public:
    explicit ProgressPrinter(std::uint64_t replicates) : replicates_(replicates) {}

    void on_replicate_done(const ReplicateReport& r) override {
        const CheckedLockGuard lock(mutex_);
        ++finished_;
        std::cerr << "pipeline: replicate " << r.index << " "
                  << (r.error.empty() ? "done" : "FAILED") << " in "
                  << fmt_seconds(r.seconds);
        if (r.resumed_supersteps > 0) {
            std::cerr << " (resumed at superstep " << r.resumed_supersteps << ")";
        }
        std::cerr << " [" << finished_ << "/" << replicates_ << "]\n";
    }

private:
    CheckedMutex mutex_{LockRank::kToolProgress, "gesmc_sample.observer"};
    std::uint64_t replicates_;
    std::uint64_t finished_ = 0;
};

struct CliEntry {
    std::string key;
    std::string value;
};

/// Corpus mode: expand the config into per-graph shards, run every
/// (graph x replicate) cell over one thread budget, emit the merged corpus
/// summary.  Exit codes mirror the single-graph path (0 ok, 1 failures,
/// 130 interrupted with a resume hint).
int run_corpus_cli(const PipelineConfig& config, bool quiet, bool progress) {
    const CorpusPlan plan = plan_corpus(config);
    CheckedMutex progress_mutex{LockRank::kToolProgress, "gesmc_sample.progress"};
    std::uint64_t cells_done = 0;
    const std::uint64_t total_cells = plan.graphs.size() * config.replicates;
    CorpusHooks hooks;
    if (progress) {
        hooks.on_replicate_done = [&](std::size_t graph, const ReplicateReport& r) {
            const CheckedLockGuard lock(progress_mutex);
            ++cells_done;
            std::cerr << "corpus: " << plan.graphs[graph].name << " replicate "
                      << r.index << (r.error.empty() ? " done" : " FAILED") << " in "
                      << fmt_seconds(r.seconds) << " [" << cells_done << "/"
                      << total_cells << "]\n";
        };
    }
    const std::atomic<bool>* interrupt = nullptr;
    if (config.checkpoint_every > 0) {
        install_interrupt_handlers();
        interrupt = &interrupt_flag();
    }
    const CorpusReport report =
        run_corpus(plan, quiet ? nullptr : &std::cerr, interrupt, hooks);
    // The merged summary must reach the caller even on partial failure or
    // interruption — completed rows carry real results.
    if (config.report_path.empty()) write_corpus_json(std::cout, report);
    if (was_interrupted(report)) {
        std::cerr << "interrupted: per-graph state checkpointed under "
                  << config.output_dir
                  << "/<graph>/checkpoints; continue with --resume "
                  << config.output_dir << "\n";
        return 130;
    }
    if (!all_succeeded(report)) {
        for (const CorpusGraphRow& row : report.rows) {
            if (!row.error.empty()) {
                std::cerr << "graph " << row.name << " failed: " << row.error << "\n";
            }
        }
        return 1;
    }
    return 0;
}

/// Single-graph mode, factored out so main can finalize the observability
/// outputs (trace file, metrics snapshot) on every exit path uniformly.
int run_single_cli(const PipelineConfig& config, bool quiet, bool progress) {
    std::optional<ProgressPrinter> printer;
    if (progress) printer.emplace(config.replicates);
    PipelineExec exec;
    if (config.checkpoint_every > 0) {
        install_interrupt_handlers();
        exec.interrupt = &interrupt_flag();
    }
    const RunReport report = run_pipeline(config, quiet ? nullptr : &std::cerr,
                                          progress ? &*printer : nullptr, exec);
    // was_interrupted, not the raw flag: a signal landing after the
    // final checkpoint check leaves a fully successful run (whose
    // checkpoints were just cleaned up) — that run must exit 0, not
    // point a resume hint at deleted files.
    if (was_interrupted(report)) {
        std::cerr << "interrupted: per-replicate state checkpointed under "
                  << config.output_dir << "/checkpoints; continue with --resume "
                  << config.output_dir << "\n";
        if (config.report_path.empty()) write_json_report(std::cout, report);
        return 130;
    }
    if (config.report_path.empty()) {
        // No report file requested: put the JSON on stdout so the run is
        // still machine-consumable (--quiet only silences progress).
        // Emitted also on partial failure — the completed replicates'
        // stats and output paths must not be lost with them.
        write_json_report(std::cout, report);
    }
    if (!all_succeeded(report)) {
        for (const ReplicateReport& r : report.replicates) {
            if (!r.error.empty()) {
                std::cerr << "replicate " << r.index << " failed: " << r.error << "\n";
            }
        }
        return 1;
    }
    return 0;
}

void write_metrics_snapshot_file(const std::string& path) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open metrics output for writing: " + path);
    JsonWriter w(os);
    obs::write_metrics_json(w, obs::MetricsRegistry::instance().snapshot());
    os << '\n';
    GESMC_CHECK(os.good(), "writing metrics output failed: " + path);
}

void write_metrics_prometheus_file(const std::string& path) {
    std::ofstream os(path);
    GESMC_CHECK(os.good(), "cannot open Prometheus output for writing: " + path);
    obs::write_metrics_prometheus(os, obs::MetricsRegistry::instance().snapshot());
    GESMC_CHECK(os.good(), "writing Prometheus output failed: " + path);
}

} // namespace

int main(int argc, char** argv) {
    std::string config_path;
    std::vector<CliEntry> overrides;
    std::string resume_dir;
    std::string trace_path;
    std::string metrics_out;
    std::string metrics_prom;
    std::string telemetry_out;
    bool metrics = false;
    bool quiet = false;
    bool progress = false;

    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    // Flags that expand to a plain config entry.
    const std::vector<std::pair<std::string, std::string>> shortcuts = {
        {"--input", "input"},         {"--gen", "generator"},
        {"--glob", "input-glob"},     {"--manifest", "corpus-manifest"},
        {"--corpus", "corpus"},
        {"--algo", "algorithm"},      {"--replicates", "replicates"},
        {"--supersteps", "supersteps"}, {"--seed", "seed"},
        {"--ess-target", "ess-target"}, {"--mixing-tau", "mixing-tau"},
        {"--min-supersteps", "min-supersteps"},
        {"--max-supersteps", "max-supersteps"}, {"--check-every", "check-every"},
        {"--threads", "threads"},     {"--policy", "policy"},
        {"--chain-threads", "chain-threads"}, {"--max-concurrent", "max-concurrent"},
        {"--edge-set-backend", "edge-set-backend"},
        {"--output-dir", "output-dir"}, {"--output-format", "output-format"},
        {"--report", "report"},         {"--checkpoint-every", "checkpoint-every"},
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = nullptr;
        if (arg == "--help") {
            std::cout << kUsage;
            return 0;
        }
        if (arg == "--quiet") {
            quiet = true;
            continue;
        }
        if (arg == "--progress") {
            progress = true;
            continue;
        }
        if (arg == "--metrics") {
            metrics = true;
            continue;
        }
        if (arg == "--metrics-out") {
            if (!(v = need_value(i))) return 2;
            metrics_out = v;
            metrics = true;
            continue;
        }
        if (arg == "--metrics-prom") {
            if (!(v = need_value(i))) return 2;
            metrics_prom = v;
            metrics = true;
            continue;
        }
        if (arg == "--telemetry-out") {
            if (!(v = need_value(i))) return 2;
            telemetry_out = v;
            metrics = true;
            continue;
        }
        if (arg == "--trace") {
            if (!(v = need_value(i))) return 2;
            trace_path = v;
            continue;
        }
        if (arg == "--resume") {
            if (!(v = need_value(i))) return 2;
            overrides.push_back({"resume-from", v});
            resume_dir = v;
            continue;
        }
        if (arg == "--config") {
            if (!(v = need_value(i))) return 2;
            config_path = v;
            continue;
        }
        if (arg == "--set") {
            if (!(v = need_value(i))) return 2;
            const std::string entry = v;
            const std::size_t eq = entry.find('=');
            if (eq == std::string::npos) {
                std::cerr << "--set expects KEY=VALUE, got: " << entry << "\n";
                return 2;
            }
            overrides.push_back({entry.substr(0, eq), entry.substr(eq + 1)});
            continue;
        }
        if (arg == "--degrees") {
            if (!(v = need_value(i))) return 2;
            overrides.push_back({"input", v});
            overrides.push_back({"input-kind", "degrees"});
            continue;
        }
        bool matched = false;
        for (const auto& [flag, key] : shortcuts) {
            if (arg == flag) {
                if (!(v = need_value(i))) return 2;
                overrides.push_back({key, v});
                if (flag == "--gen") overrides.push_back({"input-kind", "generator"});
                // --input must also reset the kind: a stale input-kind from a
                // config file or an earlier --degrees would misparse the file.
                if (flag == "--input") overrides.push_back({"input-kind", "edges"});
                matched = true;
                break;
            }
        }
        if (!matched) {
            std::cerr << "unknown option: " << arg << "\n" << kUsage;
            return 2;
        }
    }
    if (!resume_dir.empty()) {
        // --resume writes back into the interrupted run's directory unless
        // the user said otherwise anywhere on the command line (resume into
        // a fresh dir is supported — finished markers are carried over).
        const bool explicit_output_dir =
            std::any_of(overrides.begin(), overrides.end(),
                        [](const CliEntry& e) { return e.key == "output-dir"; });
        if (!explicit_output_dir) overrides.push_back({"output-dir", resume_dir});
    }

    try {
        PipelineConfig config;
        if (!config_path.empty()) config = read_pipeline_config_file(config_path);
        for (const CliEntry& entry : overrides) {
            apply_config_entry(config, entry.key, entry.value);
        }
        if (metrics) obs::set_metrics_enabled(true);
        if (!trace_path.empty()) obs::TraceSession::start();
        // --telemetry-out: a background sampler ticks once a second for the
        // whole run, appending rows to the NDJSON sink.  Destroyed (joined)
        // after the run on every path — including the exception path, where
        // stack unwinding stops it.
        std::optional<obs::TelemetrySampler> sampler;
        if (!telemetry_out.empty()) {
            // The sink truncates-on-open before the pipeline creates
            // output-dir, so a sibling path would fail silently; make the
            // parent directory and refuse to run with a dead sink.
            const auto parent = std::filesystem::path(telemetry_out).parent_path();
            if (!parent.empty()) {
                std::error_code ec;
                std::filesystem::create_directories(parent, ec);
            }
            obs::TelemetrySamplerConfig sampler_config;
            sampler_config.ndjson_path = telemetry_out;
            sampler.emplace(std::move(sampler_config));
            if (!sampler->ndjson_ok()) {
                std::cerr << "cannot open --telemetry-out for writing: "
                          << telemetry_out << "\n";
                return 2;
            }
            sampler->start();
        }
        const int code = is_corpus_config(config)
                             ? run_corpus_cli(config, quiet, progress)
                             : run_single_cli(config, quiet, progress);
        // Observability outputs are written on every completion path —
        // an interrupted (130) or partially failed (1) run's timeline is
        // exactly the one worth looking at.
        if (sampler.has_value()) {
            (void)sampler->sample_now(); // final row covers the run's tail
            sampler->stop();
        }
        if (!trace_path.empty()) obs::TraceSession::stop_and_write(trace_path);
        if (!metrics_out.empty()) write_metrics_snapshot_file(metrics_out);
        if (!metrics_prom.empty()) write_metrics_prometheus_file(metrics_prom);
        return code;
    } catch (const std::exception& e) {
        obs::TraceSession::stop();
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
