/// \file gesmc_submit.cpp
/// \brief Sampling-service client: submits a job to a running gesmc_serve
/// daemon and streams the results to disk as they arrive.
///
///   gesmc_submit --socket /tmp/gesmc.sock --config run.cfg --stream-dir out/
///   gesmc_submit --socket /tmp/gesmc.sock --config run.cfg --set seed=7
///   gesmc_submit --socket /tmp/gesmc.sock --status
///   gesmc_submit --socket /tmp/gesmc.sock --cancel 3
///   gesmc_submit --socket /tmp/gesmc.sock --shutdown
///
/// A submitted config document travels verbatim (same "key = value" keys as
/// gesmc_sample); --set overrides append lines, later entries win.  The
/// daemon streams 'J' event frames (progress, checkpoints, per-replicate
/// report fragments) and, per finished replicate, one chunked graph
/// transfer — a 'G' header followed by bounded 'D' data chunks — carrying
/// the output graph byte-identical to the daemon-side file; with
/// --stream-dir the chunks are appended straight to disk (O(chunk) client
/// memory, no size ceiling) under their original basenames, plus an
/// events.log of every JSON payload.  Exit code mirrors the job: 0
/// succeeded, 1 otherwise (failed / cancelled / interrupted / connection
/// lost).
///
/// --corpus fans a corpus config out as per-graph jobs: the client expands
/// the corpus locally (derived seeds, namespaced output dirs), submits one
/// job per graph over its own connection — the daemon schedules them with
/// the same round-robin fairness as any other traffic — and reassembles
/// the merged corpus summary from the shard reports the daemon wrote:
///
///   gesmc_submit --socket /tmp/gesmc.sock --corpus --config corpus.cfg
#include "check/checked_mutex.hpp"
#include "pipeline/config.hpp"
#include "pipeline/corpus.hpp"
#include "service/corpus_client.hpp"
#include "service/frame.hpp"
#include "service/json.hpp"
#include "service/socket.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>

using namespace gesmc;

namespace {

constexpr const char* kUsage = R"(gesmc_submit — sampling service client

Connection:
  --socket PATH     gesmc_serve Unix-domain socket (required)

Submit (default action):
  --config FILE     pipeline config to submit ("key = value" lines)
  --set KEY=VALUE   append a config override (repeatable, later wins)
  --stream-dir DIR  save streamed replicate graphs + events.log into DIR
                    (--corpus: per-graph subdirectories DIR/<name>/)
  --corpus          treat the config as a corpus: submit one job per input
                    graph (derived seeds, output-dir/<name>/ namespacing)
                    and merge the shard reports into the corpus summary
                    (written to the config's `report` path, else stdout);
                    requires output-dir — client and daemon share it
  --quiet           suppress per-replicate progress lines

Control actions:
  --status          print all jobs' status JSON to stdout
  --job N           restrict --status to one job
  --cancel N        cancel job N
  --metrics         print the daemon's metrics snapshot JSON (executor
                    occupancy, queue depth, per-job throughput; see
                    docs/observability.md)
  --watch SECS      subscribe to the daemon's telemetry stream and print
                    one JSON line per sampler tick for SECS seconds
                    (per-interval rates, executor occupancy; implies
                    --metrics; live dashboard: gesmc_top)
  --prom            print a Prometheus text exposition (v0.0.4) of the
                    daemon's metrics registry to stdout
  --shutdown        drain and stop the daemon

Exit code: the job's outcome (0 = succeeded), 2 = usage error.
)";

/// One-shot control round-trip: send `request`, print the single 'J'
/// response payload to stdout.  Returns the process exit code.
int control_action(const std::string& socket_path, const Request& request) {
    const FdHandle fd = connect_unix(socket_path);
    write_all(fd.get(), make_request_line(request));
    FrameReader reader;
    const std::optional<Frame> frame = read_frame(fd.get(), reader);
    if (!frame.has_value()) {
        std::cerr << "error: daemon closed the connection without answering\n";
        return 1;
    }
    std::cout << frame->payload << "\n";
    const JsonValue doc = parse_json(frame->payload);
    const JsonValue* event = doc.find("event");
    if (event != nullptr && event->is_string() && event->string_value == "error") {
        return 1;
    }
    // A refused action (e.g. cancelling an unknown or already-terminal
    // job) answers ok:false — scripts must see that in the exit code.
    const JsonValue* ok = doc.find("ok");
    if (ok != nullptr && ok->is_bool() && !ok->bool_value) return 1;
    return 0;
}

/// --prom: one-shot scrape.  The daemon wraps the Prometheus text in a 'J'
/// frame ({"event":"prom","exposition":"..."}); print the unwrapped text so
/// stdout is directly scrapeable / pipeable into promtool.
int prom_action(const std::string& socket_path) {
    const FdHandle fd = connect_unix(socket_path);
    Request request;
    request.kind = RequestKind::kProm;
    write_all(fd.get(), make_request_line(request));
    FrameReader reader;
    const std::optional<Frame> frame = read_frame(fd.get(), reader);
    if (!frame.has_value()) {
        std::cerr << "error: daemon closed the connection without answering\n";
        return 1;
    }
    const JsonValue doc = parse_json(frame->payload);
    std::cout << doc.string_member("exposition");
    return 0;
}

/// --watch SECS: subscribe and stream one telemetry JSON line per sampler
/// tick until the deadline (or the daemon stops).  Exit 0 iff at least one
/// tick arrived — a daemon that never ticks within SECS is a failure a
/// monitoring script should see.
int watch_action(const std::string& socket_path, double seconds) {
    const FdHandle fd = connect_unix(socket_path);
    Request request;
    request.kind = RequestKind::kWatch;
    write_all(fd.get(), make_request_line(request));
    FrameReader reader;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    std::uint64_t ticks = 0;
    for (;;) {
        const auto remaining = deadline - std::chrono::steady_clock::now();
        if (remaining <= std::chrono::steady_clock::duration::zero()) break;
        struct pollfd pfd;
        pfd.fd = fd.get();
        pfd.events = POLLIN;
        pfd.revents = 0;
        const auto remaining_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count() + 1;
        const int ready = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
        if (ready == 0) break; // deadline with no pending frame
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        const std::optional<Frame> frame = read_frame(fd.get(), reader);
        if (!frame.has_value()) break; // daemon stopped
        std::cout << frame->payload << "\n" << std::flush;
        ++ticks;
    }
    return ticks > 0 ? 0 : 1;
}

struct SubmitOptions {
    std::string socket_path;
    std::string config_path;
    std::vector<std::string> overrides; ///< "key=value" entries, in order
    std::string stream_dir;
    bool corpus = false;
    bool quiet = false;
};

/// Builds the submitted config document: the --config file's text verbatim,
/// then one appended line per --set (later wins, matching gesmc_sample's
/// CLI-over-file precedence).  Returns 0 and fills `out`, or a usage exit
/// code.
int assemble_config_text(const SubmitOptions& options, std::string& out) {
    out.clear();
    if (!options.config_path.empty()) out = read_file_bytes(options.config_path);
    for (const std::string& entry : options.overrides) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
            std::cerr << "--set expects KEY=VALUE, got: " << entry << "\n";
            return 2;
        }
        if (!out.empty() && out.back() != '\n') out += '\n';
        out += entry.substr(0, eq) + " = " + entry.substr(eq + 1) + "\n";
    }
    if (out.empty()) {
        std::cerr << "nothing to submit: give --config and/or --set\n";
        return 2;
    }
    return 0;
}

/// What one submitted job's stream ended in.
struct StreamOutcome {
    int exit_code = 1;
    std::string final_status; ///< daemon's terminal status ("" = stream broke)
};

/// Submits `config_text` over its own connection and consumes the frame
/// stream until the job settles; with a non-empty `stream_dir`, replicate
/// graphs and events.log land there.  Shared by the single-job and corpus
/// paths (the latter runs one of these per graph, concurrently).
StreamOutcome stream_job(const std::string& socket_path, const std::string& config_text,
                         const std::string& stream_dir, bool quiet) {
    StreamOutcome outcome;
    std::optional<std::ofstream> events_log;
    if (!stream_dir.empty()) {
        std::filesystem::create_directories(stream_dir);
        events_log.emplace((std::filesystem::path(stream_dir) / "events.log").string(),
                           std::ios::binary);
        if (!events_log->good()) {
            std::cerr << "error: cannot write events.log under " << stream_dir << "\n";
            return outcome;
        }
    }

    const FdHandle fd = connect_unix(socket_path);
    Request request;
    request.kind = RequestKind::kSubmit;
    request.config_text = config_text;
    write_all(fd.get(), make_request_line(request));

    FrameReader reader;
    std::uint64_t graphs_saved = 0;
    // Chunked graph reassembly: a 'G' header opens a transfer, 'D' chunks
    // append to it until the announced total arrives.  The state machine
    // enforces the protocol caps (chunk bound, no overflow past the total)
    // before any byte touches the filesystem.
    GraphTransferState transfer;
    std::ofstream graph_out;
    std::string graph_path;
    const auto finish_graph = [&] {
        if (graph_out.is_open()) {
            graph_out.close();
            if (!graph_out.good()) throw Error("cannot write " + graph_path);
        }
        ++graphs_saved;
        if (!quiet) {
            std::cerr << "streamed replicate " << transfer.header().replicate << " -> "
                      << (graph_path.empty() ? transfer.header().name : graph_path)
                      << " (" << transfer.header().total_bytes << " bytes)\n";
        }
    };
    for (;;) {
        const std::optional<Frame> frame = read_frame(fd.get(), reader);
        if (!frame.has_value()) {
            std::cerr << "error: connection closed before the job finished\n";
            return outcome;
        }
        if (frame->type == FrameType::kGraph) {
            const GraphFrame header = decode_graph_payload(frame->payload);
            const bool complete = transfer.begin(header);
            if (!stream_dir.empty()) {
                graph_path =
                    (std::filesystem::path(stream_dir) / header.name).string();
                graph_out.open(graph_path, std::ios::binary | std::ios::trunc);
                if (!graph_out.good()) throw Error("cannot write " + graph_path);
            } else {
                graph_path.clear();
            }
            if (complete) finish_graph(); // zero-byte transfer
            continue;
        }
        if (frame->type == FrameType::kGraphData) {
            const bool complete = transfer.consume(frame->payload.size());
            if (graph_out.is_open()) {
                graph_out.write(frame->payload.data(),
                                static_cast<std::streamsize>(frame->payload.size()));
                if (!graph_out.good()) throw Error("cannot write " + graph_path);
            }
            if (complete) finish_graph();
            continue;
        }
        if (events_log.has_value()) *events_log << frame->payload << "\n";
        const JsonValue doc = parse_json(frame->payload);
        const std::string& event = doc.string_member("event");
        if (event == "accepted") {
            if (!quiet) {
                std::cerr << "job " << doc.uint_member("job") << " accepted\n";
            }
        } else if (event == "replicate") {
            if (!quiet) {
                const JsonValue* report = doc.find("report");
                std::cerr << "replicate";
                if (report != nullptr && report->find("index") != nullptr) {
                    std::cerr << " " << report->uint_member("index");
                }
                if (report != nullptr && report->find("error") != nullptr) {
                    std::cerr << " FAILED: " << report->string_member("error");
                } else {
                    std::cerr << " done";
                }
                std::cerr << "\n";
            }
        } else if (event == "error") {
            std::cerr << "error: " << doc.string_member("message") << "\n";
            return outcome;
        } else if (event == "done") {
            outcome.final_status = doc.string_member("status");
            if (!quiet) {
                std::cerr << "job " << doc.uint_member("job") << " "
                          << outcome.final_status;
                if (doc.find("error") != nullptr) {
                    std::cerr << " (" << doc.string_member("error") << ")";
                }
                std::cerr << "\n";
            }
            break;
        }
        // superstep / checkpoint events: logged to events.log only.
    }
    if (!stream_dir.empty() && !quiet) {
        std::cerr << graphs_saved << " replicate graph(s) saved under " << stream_dir
                  << "\n";
    }
    outcome.exit_code = outcome.final_status == "succeeded" ? 0 : 1;
    return outcome;
}

int submit_action(const SubmitOptions& options) {
    std::string config_text;
    if (const int rc = assemble_config_text(options, config_text); rc != 0) return rc;
    return stream_job(options.socket_path, config_text, options.stream_dir,
                      options.quiet)
        .exit_code;
}

/// --corpus: expand locally, submit one job per graph concurrently, merge
/// the daemon-written shard reports into the corpus summary.  Client and
/// daemon share a filesystem (Unix-socket service), so the shard output
/// directories and reports are readable here.
int corpus_submit_action(const SubmitOptions& options) {
    std::string config_text;
    if (const int rc = assemble_config_text(options, config_text); rc != 0) return rc;
    const PipelineConfig config = read_pipeline_config_string(config_text);
    if (!is_corpus_config(config)) {
        std::cerr << "--corpus: the config names a single input; give several "
                     "inputs, an input-glob, a corpus-manifest, or a corpus spec\n";
        return 2;
    }
    if (config.output_dir.empty()) {
        std::cerr << "--corpus requires output-dir: the daemon writes per-graph "
                     "outputs and reports there and the client merges the summary "
                     "from them\n";
        return 2;
    }
    const CorpusPlan plan = plan_corpus(config);
    // Derive every shard before anything runs: corpus_shard consults the
    // resume-from directories on disk, and the daemon is about to write
    // into this run's own.
    std::vector<PipelineConfig> shards;
    shards.reserve(plan.graphs.size());
    for (std::size_t i = 0; i < plan.graphs.size(); ++i) {
        shards.push_back(corpus_shard(plan, i));
    }

    const auto started = std::chrono::steady_clock::now();
    struct GraphOutcome {
        StreamOutcome stream;
        std::string error; ///< client-side failure (connect, write, ...)
    };
    std::vector<GraphOutcome> outcomes(plan.graphs.size());
    CheckedMutex progress_mutex{LockRank::kToolProgress, "gesmc_submit.progress"};
    std::size_t finished = 0;
    // A bounded window of in-flight submissions, each on its own
    // connection + consumer thread (every stream needs a live reader so
    // observer sends never stall).  The window, not one stream per graph:
    // a thousand-member corpus must not open a thousand sockets against
    // the thread-per-connection daemon — the daemon queues beyond
    // --max-jobs anyway, so a handful of open streams keeps it saturated
    // while the rest of the corpus waits client-side.
    constexpr std::size_t kMaxStreams = 8;
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= plan.graphs.size()) return;
            try {
                const std::string stream_dir =
                    options.stream_dir.empty()
                        ? std::string()
                        : (std::filesystem::path(options.stream_dir) /
                           plan.graphs[i].name)
                              .string();
                outcomes[i].stream =
                    stream_job(options.socket_path,
                               pipeline_config_to_string(shards[i]), stream_dir,
                               /*quiet=*/true);
            } catch (const std::exception& e) {
                outcomes[i].error = e.what();
            }
            if (!options.quiet) {
                const CheckedLockGuard lock(progress_mutex);
                ++finished;
                std::cerr << "corpus: graph " << plan.graphs[i].name << " ";
                if (!outcomes[i].error.empty()) {
                    std::cerr << "error: " << outcomes[i].error;
                } else if (outcomes[i].stream.final_status.empty()) {
                    std::cerr << "connection lost";
                } else {
                    std::cerr << outcomes[i].stream.final_status;
                }
                std::cerr << " [" << finished << "/" << plan.graphs.size() << "]\n";
            }
        }
    };
    std::vector<std::thread> streams;
    const std::size_t width = std::min(kMaxStreams, plan.graphs.size());
    streams.reserve(width);
    for (std::size_t w = 0; w < width; ++w) streams.emplace_back(worker);
    for (std::thread& stream : streams) stream.join();

    // Reassemble the merged summary from the shard reports the daemon wrote
    // — the same rows a local run_corpus computes in memory.
    CorpusReport report;
    report.config = plan.base;
    bool ok = true;
    for (std::size_t i = 0; i < plan.graphs.size(); ++i) {
        CorpusGraphRow row;
        try {
            row = corpus_row_from_report_json(plan.graphs[i],
                                              read_file_bytes(shards[i].report_path));
        } catch (const std::exception& e) {
            row.name = plan.graphs[i].name;
            row.input_path = plan.graphs[i].path;
            row.seed = shards[i].seed;
            row.replicates = shards[i].replicates;
            row.failed = shards[i].replicates;
            row.error = "cannot read shard report: " + std::string(e.what());
        }
        // The daemon's terminal status overrides a clean-looking parse: a
        // job that failed before run_pipeline rewrote report.json (e.g. a
        // vanished input) leaves a *stale* report from an earlier run
        // behind, and the summary must name the failed graph rather than
        // echo old numbers as success.
        const bool job_ok =
            outcomes[i].error.empty() && outcomes[i].stream.exit_code == 0;
        if (!job_ok && row.error.empty() && row.failed == 0 &&
            row.interrupted == 0) {
            row.error = !outcomes[i].error.empty()
                            ? outcomes[i].error
                        : outcomes[i].stream.final_status.empty()
                            ? "connection lost before the job finished"
                            : "daemon job " + outcomes[i].stream.final_status +
                                  " (per-graph report may be stale)";
        }
        ok = ok && job_ok && row.failed == 0 && row.interrupted == 0 &&
             row.error.empty();
        report.rows.push_back(std::move(row));
    }
    report.total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    if (!config.report_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(config.report_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent);
        write_corpus_json_file(config.report_path, report);
        if (!options.quiet) {
            std::cerr << "corpus: merged summary written to " << config.report_path
                      << "\n";
        }
    } else {
        write_corpus_json(std::cout, report);
    }
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    SubmitOptions submit;
    enum class Action { kSubmit, kStatus, kCancel, kMetrics, kWatch, kProm, kShutdown };
    Action action = Action::kSubmit;
    std::uint64_t job = 0;
    bool has_job = false;
    double watch_seconds = 0;

    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = nullptr;
        if (arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--quiet") {
            submit.quiet = true;
        } else if (arg == "--socket") {
            if (!(v = need_value(i))) return 2;
            socket_path = v;
        } else if (arg == "--config") {
            if (!(v = need_value(i))) return 2;
            submit.config_path = v;
        } else if (arg == "--set") {
            if (!(v = need_value(i))) return 2;
            submit.overrides.emplace_back(v);
        } else if (arg == "--stream-dir") {
            if (!(v = need_value(i))) return 2;
            submit.stream_dir = v;
        } else if (arg == "--corpus") {
            submit.corpus = true;
        } else if (arg == "--status") {
            action = Action::kStatus;
        } else if (arg == "--job") {
            if (!(v = need_value(i))) return 2;
            job = std::strtoull(v, nullptr, 10);
            has_job = true;
        } else if (arg == "--cancel") {
            if (!(v = need_value(i))) return 2;
            action = Action::kCancel;
            job = std::strtoull(v, nullptr, 10);
            has_job = true;
        } else if (arg == "--metrics") {
            if (action != Action::kWatch) action = Action::kMetrics;
        } else if (arg == "--watch") {
            if (!(v = need_value(i))) return 2;
            watch_seconds = std::strtod(v, nullptr);
            if (!(watch_seconds > 0)) {
                std::cerr << "--watch expects a positive duration in seconds\n";
                return 2;
            }
            action = Action::kWatch;
        } else if (arg == "--prom") {
            action = Action::kProm;
        } else if (arg == "--shutdown") {
            action = Action::kShutdown;
        } else {
            std::cerr << "unknown option: " << arg << "\n" << kUsage;
            return 2;
        }
    }
    if (socket_path.empty()) {
        std::cerr << "--socket PATH is required\n" << kUsage;
        return 2;
    }

    try {
        switch (action) {
        case Action::kSubmit:
            submit.socket_path = socket_path;
            return submit.corpus ? corpus_submit_action(submit) : submit_action(submit);
        case Action::kStatus: {
            Request request;
            request.kind = RequestKind::kStatus;
            request.job = job;
            request.has_job = has_job;
            return control_action(socket_path, request);
        }
        case Action::kCancel: {
            Request request;
            request.kind = RequestKind::kCancel;
            request.job = job;
            request.has_job = true;
            return control_action(socket_path, request);
        }
        case Action::kMetrics: {
            Request request;
            request.kind = RequestKind::kMetrics;
            return control_action(socket_path, request);
        }
        case Action::kWatch:
            return watch_action(socket_path, watch_seconds);
        case Action::kProm:
            return prom_action(socket_path);
        case Action::kShutdown: {
            Request request;
            request.kind = RequestKind::kShutdown;
            return control_action(socket_path, request);
        }
        }
        return 2;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
