/// \file gesmc_submit.cpp
/// \brief Sampling-service client: submits a job to a running gesmc_serve
/// daemon and streams the results to disk as they arrive.
///
///   gesmc_submit --socket /tmp/gesmc.sock --config run.cfg --stream-dir out/
///   gesmc_submit --socket /tmp/gesmc.sock --config run.cfg --set seed=7
///   gesmc_submit --socket /tmp/gesmc.sock --status
///   gesmc_submit --socket /tmp/gesmc.sock --cancel 3
///   gesmc_submit --socket /tmp/gesmc.sock --shutdown
///
/// A submitted config document travels verbatim (same "key = value" keys as
/// gesmc_sample); --set overrides append lines, later entries win.  The
/// daemon streams 'J' event frames (progress, checkpoints, per-replicate
/// report fragments) and, per finished replicate, one chunked graph
/// transfer — a 'G' header followed by bounded 'D' data chunks — carrying
/// the output graph byte-identical to the daemon-side file; with
/// --stream-dir the chunks are appended straight to disk (O(chunk) client
/// memory, no size ceiling) under their original basenames, plus an
/// events.log of every JSON payload.  Exit code mirrors the job: 0
/// succeeded, 1 otherwise (failed / cancelled / interrupted / connection
/// lost).
#include "service/frame.hpp"
#include "service/json.hpp"
#include "service/socket.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace gesmc;

namespace {

constexpr const char* kUsage = R"(gesmc_submit — sampling service client

Connection:
  --socket PATH     gesmc_serve Unix-domain socket (required)

Submit (default action):
  --config FILE     pipeline config to submit ("key = value" lines)
  --set KEY=VALUE   append a config override (repeatable, later wins)
  --stream-dir DIR  save streamed replicate graphs + events.log into DIR
  --quiet           suppress per-replicate progress lines

Control actions:
  --status          print all jobs' status JSON to stdout
  --job N           restrict --status to one job
  --cancel N        cancel job N
  --shutdown        drain and stop the daemon

Exit code: the job's outcome (0 = succeeded), 2 = usage error.
)";

/// One-shot control round-trip: send `request`, print the single 'J'
/// response payload to stdout.  Returns the process exit code.
int control_action(const std::string& socket_path, const Request& request) {
    const FdHandle fd = connect_unix(socket_path);
    write_all(fd.get(), make_request_line(request));
    FrameReader reader;
    const std::optional<Frame> frame = read_frame(fd.get(), reader);
    if (!frame.has_value()) {
        std::cerr << "error: daemon closed the connection without answering\n";
        return 1;
    }
    std::cout << frame->payload << "\n";
    const JsonValue doc = parse_json(frame->payload);
    const JsonValue* event = doc.find("event");
    if (event != nullptr && event->is_string() && event->string_value == "error") {
        return 1;
    }
    // A refused action (e.g. cancelling an unknown or already-terminal
    // job) answers ok:false — scripts must see that in the exit code.
    const JsonValue* ok = doc.find("ok");
    if (ok != nullptr && ok->is_bool() && !ok->bool_value) return 1;
    return 0;
}

struct SubmitOptions {
    std::string socket_path;
    std::string config_path;
    std::vector<std::string> overrides; ///< "key=value" entries, in order
    std::string stream_dir;
    bool quiet = false;
};

int submit_action(const SubmitOptions& options) {
    // Config text travels verbatim; overrides append lines (later wins,
    // matching gesmc_sample's CLI-over-file precedence).
    std::string config_text;
    if (!options.config_path.empty()) config_text = read_file_bytes(options.config_path);
    for (const std::string& entry : options.overrides) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
            std::cerr << "--set expects KEY=VALUE, got: " << entry << "\n";
            return 2;
        }
        if (!config_text.empty() && config_text.back() != '\n') config_text += '\n';
        config_text += entry.substr(0, eq) + " = " + entry.substr(eq + 1) + "\n";
    }
    if (config_text.empty()) {
        std::cerr << "nothing to submit: give --config and/or --set\n";
        return 2;
    }

    std::optional<std::ofstream> events_log;
    if (!options.stream_dir.empty()) {
        std::filesystem::create_directories(options.stream_dir);
        events_log.emplace(
            (std::filesystem::path(options.stream_dir) / "events.log").string(),
            std::ios::binary);
        if (!events_log->good()) {
            std::cerr << "error: cannot write events.log under " << options.stream_dir
                      << "\n";
            return 1;
        }
    }

    const FdHandle fd = connect_unix(options.socket_path);
    Request request;
    request.kind = RequestKind::kSubmit;
    request.config_text = config_text;
    write_all(fd.get(), make_request_line(request));

    FrameReader reader;
    std::string final_status;
    std::uint64_t graphs_saved = 0;
    // Chunked graph reassembly: a 'G' header opens a transfer, 'D' chunks
    // append to it until the announced total arrives.  The state machine
    // enforces the protocol caps (chunk bound, no overflow past the total)
    // before any byte touches the filesystem.
    GraphTransferState transfer;
    std::ofstream graph_out;
    std::string graph_path;
    const auto finish_graph = [&] {
        if (graph_out.is_open()) {
            graph_out.close();
            if (!graph_out.good()) throw Error("cannot write " + graph_path);
        }
        ++graphs_saved;
        if (!options.quiet) {
            std::cerr << "streamed replicate " << transfer.header().replicate << " -> "
                      << (graph_path.empty() ? transfer.header().name : graph_path)
                      << " (" << transfer.header().total_bytes << " bytes)\n";
        }
    };
    for (;;) {
        const std::optional<Frame> frame = read_frame(fd.get(), reader);
        if (!frame.has_value()) {
            std::cerr << "error: connection closed before the job finished\n";
            return 1;
        }
        if (frame->type == FrameType::kGraph) {
            const GraphFrame header = decode_graph_payload(frame->payload);
            const bool complete = transfer.begin(header);
            if (!options.stream_dir.empty()) {
                graph_path =
                    (std::filesystem::path(options.stream_dir) / header.name).string();
                graph_out.open(graph_path, std::ios::binary | std::ios::trunc);
                if (!graph_out.good()) throw Error("cannot write " + graph_path);
            } else {
                graph_path.clear();
            }
            if (complete) finish_graph(); // zero-byte transfer
            continue;
        }
        if (frame->type == FrameType::kGraphData) {
            const bool complete = transfer.consume(frame->payload.size());
            if (graph_out.is_open()) {
                graph_out.write(frame->payload.data(),
                                static_cast<std::streamsize>(frame->payload.size()));
                if (!graph_out.good()) throw Error("cannot write " + graph_path);
            }
            if (complete) finish_graph();
            continue;
        }
        if (events_log.has_value()) *events_log << frame->payload << "\n";
        const JsonValue doc = parse_json(frame->payload);
        const std::string& event = doc.string_member("event");
        if (event == "accepted") {
            if (!options.quiet) {
                std::cerr << "job " << doc.uint_member("job") << " accepted\n";
            }
        } else if (event == "replicate") {
            if (!options.quiet) {
                const JsonValue* report = doc.find("report");
                std::cerr << "replicate";
                if (report != nullptr && report->find("index") != nullptr) {
                    std::cerr << " " << report->uint_member("index");
                }
                if (report != nullptr && report->find("error") != nullptr) {
                    std::cerr << " FAILED: " << report->string_member("error");
                } else {
                    std::cerr << " done";
                }
                std::cerr << "\n";
            }
        } else if (event == "error") {
            std::cerr << "error: " << doc.string_member("message") << "\n";
            return 1;
        } else if (event == "done") {
            final_status = doc.string_member("status");
            if (!options.quiet) {
                std::cerr << "job " << doc.uint_member("job") << " " << final_status;
                if (doc.find("error") != nullptr) {
                    std::cerr << " (" << doc.string_member("error") << ")";
                }
                std::cerr << "\n";
            }
            break;
        }
        // superstep / checkpoint events: logged to events.log only.
    }
    if (!options.stream_dir.empty() && !options.quiet) {
        std::cerr << graphs_saved << " replicate graph(s) saved under "
                  << options.stream_dir << "\n";
    }
    return final_status == "succeeded" ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    SubmitOptions submit;
    enum class Action { kSubmit, kStatus, kCancel, kShutdown };
    Action action = Action::kSubmit;
    std::uint64_t job = 0;
    bool has_job = false;

    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = nullptr;
        if (arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--quiet") {
            submit.quiet = true;
        } else if (arg == "--socket") {
            if (!(v = need_value(i))) return 2;
            socket_path = v;
        } else if (arg == "--config") {
            if (!(v = need_value(i))) return 2;
            submit.config_path = v;
        } else if (arg == "--set") {
            if (!(v = need_value(i))) return 2;
            submit.overrides.emplace_back(v);
        } else if (arg == "--stream-dir") {
            if (!(v = need_value(i))) return 2;
            submit.stream_dir = v;
        } else if (arg == "--status") {
            action = Action::kStatus;
        } else if (arg == "--job") {
            if (!(v = need_value(i))) return 2;
            job = std::strtoull(v, nullptr, 10);
            has_job = true;
        } else if (arg == "--cancel") {
            if (!(v = need_value(i))) return 2;
            action = Action::kCancel;
            job = std::strtoull(v, nullptr, 10);
            has_job = true;
        } else if (arg == "--shutdown") {
            action = Action::kShutdown;
        } else {
            std::cerr << "unknown option: " << arg << "\n" << kUsage;
            return 2;
        }
    }
    if (socket_path.empty()) {
        std::cerr << "--socket PATH is required\n" << kUsage;
        return 2;
    }

    try {
        switch (action) {
        case Action::kSubmit:
            submit.socket_path = socket_path;
            return submit_action(submit);
        case Action::kStatus: {
            Request request;
            request.kind = RequestKind::kStatus;
            request.job = job;
            request.has_job = has_job;
            return control_action(socket_path, request);
        }
        case Action::kCancel: {
            Request request;
            request.kind = RequestKind::kCancel;
            request.job = job;
            request.has_job = true;
            return control_action(socket_path, request);
        }
        case Action::kShutdown: {
            Request request;
            request.kind = RequestKind::kShutdown;
            return control_action(socket_path, request);
        }
        }
        return 2;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
