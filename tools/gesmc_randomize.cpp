/// \file gesmc_randomize.cpp
/// \brief Command-line graph randomizer: the library's end-user entry point.
///
/// Reads an edge list (or generates a synthetic graph), runs the selected
/// edge-switching Markov chain for a number of supersteps, writes the
/// randomized graph, and prints run statistics.
///
///   gesmc_randomize --input graph.txt --output random.txt
///   gesmc_randomize --gen powerlaw --n 100000 --gamma 2.2 --supersteps 30
///   gesmc_randomize --input g.txt --algo seq-es --seed 7 --threads 4
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "graph/degree_sequence.hpp"
#include "graph/io.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

using namespace gesmc;

namespace {

constexpr const char* kUsage = R"(gesmc_randomize — uniform sampling of simple graphs with prescribed degrees

Input (one of):
  --input FILE        read edge list ("u v" per line, '#'/'%' comments)
  --gen KIND          generate: powerlaw (needs --n, --gamma), gnp (--n, --m),
                      grid (--rows, --cols), regular (--n, --degree)

Options:
  --algo NAME         seq-es | seq-global-es | par-es | par-global-es |
                      naive-par-es | adj-list-es        [par-global-es]
  --supersteps K      supersteps to run (1 superstep ~ m/2 switches)  [20]
  --seed S            random seed                                     [1]
  --threads P         worker threads, 0 = hardware concurrency        [0]
  --pl X              G-ES-MC rejection probability P_L               [1e-3]
  --small-cutoff M    sequential base case below M edges (0 = off)    [0]
  --no-prefetch       disable the prefetching pipelines
  --output FILE       write the randomized edge list
  --help              this text
)";

struct Options {
    std::string input;
    std::string gen;
    std::string output;
    ChainAlgorithm algo = ChainAlgorithm::kParGlobalES;
    std::uint64_t supersteps = 20;
    ChainConfig chain;
    std::uint64_t n = 10000;
    std::uint64_t m = 50000;
    double gamma = 2.2;
    std::uint64_t rows = 100, cols = 100;
    std::uint32_t degree = 8;
};

std::optional<Options> parse(int argc, char** argv) {
    Options opt;
    opt.chain.threads = 0;
    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = nullptr;
        if (arg == "--help") {
            std::cout << kUsage;
            std::exit(0);
        } else if (arg == "--no-prefetch") {
            opt.chain.prefetch = false;
        } else if (arg == "--input") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.input = v;
        } else if (arg == "--gen") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.gen = v;
        } else if (arg == "--output") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.output = v;
        } else if (arg == "--algo") {
            if (!(v = need_value(i))) return std::nullopt;
            try {
                opt.algo = chain_algorithm_from_string(v);
            } catch (const Error& e) {
                std::cerr << e.what() << "\n";
                return std::nullopt;
            }
        } else if (arg == "--supersteps") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.supersteps = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seed") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--threads") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--pl") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.pl = std::strtod(v, nullptr);
        } else if (arg == "--small-cutoff") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.small_graph_cutoff = std::strtoull(v, nullptr, 10);
        } else if (arg == "--n") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.n = std::strtoull(v, nullptr, 10);
        } else if (arg == "--m") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.m = std::strtoull(v, nullptr, 10);
        } else if (arg == "--gamma") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.gamma = std::strtod(v, nullptr);
        } else if (arg == "--rows") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.rows = std::strtoull(v, nullptr, 10);
        } else if (arg == "--cols") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.cols = std::strtoull(v, nullptr, 10);
        } else if (arg == "--degree") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.degree = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else {
            std::cerr << "unknown option: " << arg << "\n" << kUsage;
            return std::nullopt;
        }
    }
    if (opt.input.empty() == opt.gen.empty()) {
        std::cerr << "exactly one of --input / --gen is required\n" << kUsage;
        return std::nullopt;
    }
    return opt;
}

EdgeList build_graph(const Options& opt) {
    if (!opt.input.empty()) return read_any_edge_list_file(opt.input);
    if (opt.gen == "powerlaw") {
        return generate_powerlaw_graph(static_cast<node_t>(opt.n), opt.gamma, opt.chain.seed);
    }
    if (opt.gen == "gnp") {
        return generate_gnp(static_cast<node_t>(opt.n),
                            gnp_probability_for_edges(static_cast<node_t>(opt.n), opt.m),
                            opt.chain.seed);
    }
    if (opt.gen == "grid") {
        return generate_grid(static_cast<node_t>(opt.rows), static_cast<node_t>(opt.cols));
    }
    if (opt.gen == "regular") {
        return generate_regular(static_cast<node_t>(opt.n), opt.degree);
    }
    throw Error("unknown --gen kind: " + opt.gen);
}

} // namespace

int main(int argc, char** argv) {
    const auto opt = parse(argc, argv);
    if (!opt) return 2;
    try {
        const EdgeList initial = build_graph(*opt);
        std::cerr << "graph: n = " << initial.num_nodes() << ", m = " << initial.num_edges()
                  << ", max degree = " << degree_sequence_of(initial).max_degree() << "\n";

        auto chain = make_chain(opt->algo, initial, opt->chain);
        std::cerr << "running " << chain->name() << " for " << opt->supersteps
                  << " supersteps...\n";
        Timer timer;
        chain->run_supersteps(opt->supersteps);
        const double secs = timer.elapsed_s();

        const auto& st = chain->stats();
        std::cerr << "done in " << fmt_seconds(secs) << ": " << st.attempted
                  << " switches attempted, " << st.accepted << " accepted ("
                  << fmt_si(double(st.attempted) / secs) << " switches/s)\n";

        GESMC_CHECK(chain->graph().is_simple(), "internal error: non-simple result");
        GESMC_CHECK(chain->graph().degrees() == initial.degrees(),
                    "internal error: degree sequence changed");

        if (!opt->output.empty()) {
            write_edge_list_file(opt->output, chain->graph());
            std::cerr << "wrote " << opt->output << "\n";
        } else {
            write_edge_list(std::cout, chain->graph());
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
