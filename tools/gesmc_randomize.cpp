/// \file gesmc_randomize.cpp
/// \brief Command-line graph randomizer: the library's end-user entry point.
///
/// Reads an edge list (or generates a synthetic graph), runs the selected
/// edge-switching Markov chain for a number of supersteps, writes the
/// randomized graph, and prints run statistics.
///
///   gesmc_randomize --input graph.txt --output random.txt
///   gesmc_randomize --gen powerlaw --n 100000 --gamma 2.2 --supersteps 30
///   gesmc_randomize --input g.txt --algo seq-es --seed 7 --threads 4
///   gesmc_randomize --input g.txt --checkpoint run.gesc --checkpoint-every 5
///   gesmc_randomize --resume run.gesc --supersteps 40   # continue to 40 total
#include "core/chain.hpp"
#include "gen/corpus.hpp"
#include "gen/gnp.hpp"
#include "graph/io.hpp"
#include "util/format.hpp"
#include "util/signal_interrupt.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

using namespace gesmc;

namespace {

constexpr const char* kUsage = R"(gesmc_randomize — uniform sampling of simple graphs with prescribed degrees

Input (one of):
  --input FILE        read edge list ("u v" per line, '#'/'%' comments)
  --gen KIND          generate: powerlaw (needs --n, --gamma), gnp (--n, --m),
                      grid (--rows, --cols), regular (--n, --degree)

Options:
  --algo NAME         seq-es | seq-global-es | par-es | par-global-es |
                      naive-par-es | adj-list-es        [par-global-es]
  --supersteps K      supersteps to run (1 superstep ~ m/2 switches)  [20]
  --seed S            random seed                                     [1]
  --threads P         worker threads, 0 = hardware concurrency        [0]
  --pl X              G-ES-MC rejection probability P_L               [1e-3]
  --small-cutoff M    sequential base case below M edges (0 = off)    [0]
  --no-prefetch       disable the prefetching pipelines
  --output FILE       write the randomized edge list
  --checkpoint FILE   write a resumable chain-state snapshot (.gesc) to
                      FILE at completion (and periodically, see below)
  --checkpoint-every N  also snapshot every N supersteps (needs --checkpoint)
  --resume FILE       continue a chain from a snapshot instead of --input /
                      --gen; --supersteps is the *total* target, so a chain
                      resumed at superstep 20 with --supersteps 40 runs 20
                      more — byte-identical to one uninterrupted 40-step run
  --progress          print a line after every superstep
  --help              this text
)";

/// --progress: a RunObserver streaming per-superstep state to stderr.
class SuperstepPrinter final : public RunObserver {
public:
    explicit SuperstepPrinter(std::uint64_t target) : target_(target) {}

    void on_superstep(std::uint64_t, const Chain& chain) override {
        const ChainStats& st = chain.stats();
        std::cerr << "superstep " << st.supersteps << "/" << target_ << ": "
                  << st.attempted << " attempted, " << st.accepted << " accepted\n";
    }

private:
    std::uint64_t target_;
};

struct Options {
    std::string input;
    std::string gen;
    std::string output;
    std::string checkpoint;
    std::uint64_t checkpoint_every = 0;
    std::string resume;
    bool progress = false;
    ChainAlgorithm algo = ChainAlgorithm::kParGlobalES;
    bool algo_set = false; ///< --algo given explicitly (resume conflict check)
    bool seed_set = false; ///< --seed given explicitly
    bool pl_set = false;   ///< --pl given explicitly
    std::uint64_t supersteps = 20;
    ChainConfig chain;
    std::uint64_t n = 10000;
    std::uint64_t m = 50000;
    double gamma = 2.2;
    std::uint64_t rows = 100, cols = 100;
    std::uint32_t degree = 8;
};

std::optional<Options> parse(int argc, char** argv) {
    Options opt;
    opt.chain.threads = 0;
    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = nullptr;
        if (arg == "--help") {
            std::cout << kUsage;
            std::exit(0);
        } else if (arg == "--no-prefetch") {
            opt.chain.prefetch = false;
        } else if (arg == "--input") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.input = v;
        } else if (arg == "--gen") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.gen = v;
        } else if (arg == "--output") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.output = v;
        } else if (arg == "--checkpoint") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.checkpoint = v;
        } else if (arg == "--checkpoint-every") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.checkpoint_every = std::strtoull(v, nullptr, 10);
        } else if (arg == "--resume") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.resume = v;
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--algo") {
            if (!(v = need_value(i))) return std::nullopt;
            try {
                opt.algo = chain_algorithm_from_string(v);
                opt.algo_set = true;
            } catch (const Error& e) {
                std::cerr << e.what() << "\n";
                return std::nullopt;
            }
        } else if (arg == "--supersteps") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.supersteps = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seed") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.seed = std::strtoull(v, nullptr, 10);
            opt.seed_set = true;
        } else if (arg == "--threads") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--pl") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.pl = std::strtod(v, nullptr);
            opt.pl_set = true;
        } else if (arg == "--small-cutoff") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.chain.small_graph_cutoff = std::strtoull(v, nullptr, 10);
        } else if (arg == "--n") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.n = std::strtoull(v, nullptr, 10);
        } else if (arg == "--m") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.m = std::strtoull(v, nullptr, 10);
        } else if (arg == "--gamma") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.gamma = std::strtod(v, nullptr);
        } else if (arg == "--rows") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.rows = std::strtoull(v, nullptr, 10);
        } else if (arg == "--cols") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.cols = std::strtoull(v, nullptr, 10);
        } else if (arg == "--degree") {
            if (!(v = need_value(i))) return std::nullopt;
            opt.degree = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else {
            std::cerr << "unknown option: " << arg << "\n" << kUsage;
            return std::nullopt;
        }
    }
    if (opt.resume.empty()) {
        if (opt.input.empty() == opt.gen.empty()) {
            std::cerr << "exactly one of --input / --gen is required\n" << kUsage;
            return std::nullopt;
        }
    } else if (!opt.input.empty() || !opt.gen.empty()) {
        std::cerr << "--resume replaces --input / --gen (the snapshot holds the graph)\n";
        return std::nullopt;
    }
    if (opt.checkpoint_every > 0 && opt.checkpoint.empty()) {
        std::cerr << "--checkpoint-every requires --checkpoint FILE\n";
        return std::nullopt;
    }
    return opt;
}

/// Thrown from the checkpoint boundary when SIGINT/SIGTERM arrived: the
/// snapshot just written is the resume point, so the run stops cleanly
/// instead of dying mid-write.
struct Interrupted {
    std::uint64_t superstep;
};

EdgeList build_graph(const Options& opt) {
    if (!opt.input.empty()) return read_any_edge_list_file(opt.input);
    if (opt.gen == "powerlaw") {
        return generate_powerlaw_graph(static_cast<node_t>(opt.n), opt.gamma, opt.chain.seed);
    }
    if (opt.gen == "gnp") {
        return generate_gnp(static_cast<node_t>(opt.n),
                            gnp_probability_for_edges(static_cast<node_t>(opt.n), opt.m),
                            opt.chain.seed);
    }
    if (opt.gen == "grid") {
        return generate_grid(static_cast<node_t>(opt.rows), static_cast<node_t>(opt.cols));
    }
    if (opt.gen == "regular") {
        return generate_regular(static_cast<node_t>(opt.n), opt.degree);
    }
    throw Error("unknown --gen kind: " + opt.gen);
}

} // namespace

int main(int argc, char** argv) {
    auto opt = parse(argc, argv);
    if (!opt) return 2;
    try {
        // make_chain validates threads >= 1; 0 means "use the hardware".
        if (opt->chain.threads == 0) opt->chain.threads = hardware_threads();

        std::unique_ptr<Chain> chain;
        if (!opt->resume.empty()) {
            const ChainState state = read_chain_state_file(opt->resume);
            // The snapshot decides the algorithm and seed; explicit flags
            // that disagree are a config error, not something to silently
            // override.
            GESMC_CHECK(!opt->algo_set || opt->algo == state.algorithm,
                        "--algo " + chain_algorithm_name(opt->algo) +
                            " conflicts with the snapshot's " +
                            chain_algorithm_name(state.algorithm) +
                            " (drop --algo to resume)");
            GESMC_CHECK(!opt->seed_set || opt->chain.seed == state.seed,
                        "--seed conflicts with the snapshot's seed (drop --seed "
                        "to resume)");
            // pl only shapes the G-ES trajectory; ES snapshots leave the
            // placeholder default, which must not trip the conflict check.
            const bool pl_matters = state.algorithm == ChainAlgorithm::kSeqGlobalES ||
                                    state.algorithm == ChainAlgorithm::kParGlobalES;
            GESMC_CHECK(!opt->pl_set || !pl_matters || opt->chain.pl == state.pl,
                        "--pl conflicts with the snapshot's P_L (drop --pl to "
                        "resume)");
            chain = make_chain(state, opt->chain);
            std::cerr << "resumed " << chain->name() << " at superstep "
                      << chain->stats().supersteps << " from " << opt->resume << "\n";
        } else {
            const EdgeList initial = build_graph(*opt);
            chain = make_chain(opt->algo, initial, opt->chain);
        }
        // Degree baseline for the final invariant check (keys stay with the
        // chain — no graph copy, snapshots can be 10^9 edges).
        const std::vector<std::uint32_t> initial_degrees = chain->graph().degrees();
        const std::uint32_t max_degree =
            initial_degrees.empty()
                ? 0
                : *std::max_element(initial_degrees.begin(), initial_degrees.end());
        std::cerr << "graph: n = " << chain->graph().num_nodes()
                  << ", m = " << chain->graph().num_edges()
                  << ", max degree = " << max_degree << "\n";

        const std::uint64_t already = chain->stats().supersteps;
        // A snapshot past the target would make the output a *more*
        // randomized graph silently mislabeled as the requested run.
        GESMC_CHECK(already <= opt->supersteps,
                    "snapshot is at superstep " + std::to_string(already) +
                        ", ahead of --supersteps " + std::to_string(opt->supersteps) +
                        " (--supersteps is the total target)");
        const std::uint64_t remaining = opt->supersteps - already;
        std::cerr << "running " << chain->name() << " for " << remaining
                  << " supersteps...\n";

        SuperstepPrinter printer(opt->supersteps);
        RunObserver* observer = opt->progress ? &printer : nullptr;
        if (!opt->checkpoint.empty() && opt->checkpoint_every > 0) {
            install_interrupt_handlers();
        }
        Timer timer;
        try {
            run_checkpointed(*chain, opt->supersteps, opt->checkpoint_every, observer, 0,
                             [&] {
                if (opt->checkpoint.empty()) return;
                write_chain_state_file_atomic(opt->checkpoint, chain->snapshot());
                std::cerr << "checkpoint: superstep " << chain->stats().supersteps
                          << " -> " << opt->checkpoint << "\n";
                // SIGINT/SIGTERM: the snapshot just written is the resume
                // point — stop here instead of dying mid-run (the
                // completion boundary finishes the run instead).
                if (interrupt_flag().load(std::memory_order_relaxed) &&
                    chain->stats().supersteps < opt->supersteps) {
                    throw Interrupted{chain->stats().supersteps};
                }
            });
        } catch (const Interrupted& stop) {
            std::cerr << "interrupted at superstep " << stop.superstep
                      << ": state saved to " << opt->checkpoint
                      << "; continue with --resume " << opt->checkpoint
                      << " --supersteps " << opt->supersteps << "\n";
            return 130;
        }
        const double secs = timer.elapsed_s();

        const auto& st = chain->stats();
        std::cerr << "done in " << fmt_seconds(secs) << ": " << st.attempted
                  << " switches attempted, " << st.accepted << " accepted ("
                  << fmt_si(double(st.attempted) / secs) << " switches/s)\n";

        GESMC_CHECK(chain->graph().is_simple(), "internal error: non-simple result");
        GESMC_CHECK(chain->graph().degrees() == initial_degrees,
                    "internal error: degree sequence changed");

        if (!opt->output.empty()) {
            write_edge_list_file(opt->output, chain->graph());
            std::cerr << "wrote " << opt->output << "\n";
        } else {
            write_edge_list(std::cout, chain->graph());
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
