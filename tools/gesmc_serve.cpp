/// \file gesmc_serve.cpp
/// \brief Sampling-service daemon: a long-lived process owning the shared
/// thread pool, accepting sampling jobs over a Unix-domain socket.
///
/// Null-model pipelines submit config documents (the same "key = value"
/// vocabulary gesmc_sample reads) and get replicate graphs + report
/// fragments streamed back as they finish — no fork/exec per run, one
/// machine-wide pool across all jobs.  Protocol: docs/service_protocol.md;
/// client: gesmc_submit.
///
///   gesmc_serve --socket /tmp/gesmc.sock
///   gesmc_serve --socket /tmp/gesmc.sock --threads 16 --max-jobs 4
///
/// SIGTERM/SIGINT drain gracefully: running checkpointed jobs stop at
/// their next checkpoint boundary (resumable after a restart via
/// resume-from), uncheckpointed jobs finish, queued jobs are cancelled,
/// then the daemon exits 0.
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

using namespace gesmc;

namespace {

constexpr const char* kUsage = R"(gesmc_serve — sampling service daemon

Options:
  --socket PATH   Unix-domain socket to listen on (required)
  --threads P     machine-level thread budget shared by all jobs;
                  each job's replicates lease chain-threads-wide
                  sub-pools out of it (0 = hardware concurrency) [0]
  --max-jobs N    jobs running concurrently; others queue       [2]
  --no-metrics    disable runtime metrics collection (on by default;
                  query with gesmc_submit --metrics)
  --telemetry-interval MS
                  sampler tick: how often counters/gauges/executor
                  stats are snapshotted into the telemetry ring that
                  feeds `watch` subscribers (gesmc_top)        [1000]
  --telemetry-out FILE
                  append one NDJSON time-series row per tick to FILE
                  (truncated at startup; tail -f-able)
  --log-file FILE structured JSON-lines event log (appended);
                  schema in docs/observability.md
  --log-level L   minimum event level: debug|info|warn|error   [info]
  --quiet         suppress progress logging
  --help          this text

Submit jobs with gesmc_submit; frame layout in docs/service_protocol.md.
Watch live telemetry with gesmc_top; scrape Prometheus text with
gesmc_submit --prom.  SIGTERM drains: running jobs finish or
checkpoint, then the daemon exits.
)";

std::atomic<ServiceServer*> g_server{nullptr};

void handle_signal(int) {
    // Async-signal-safe: request_stop only stores a flag + writes a pipe.
    ServiceServer* const server = g_server.load(std::memory_order_relaxed);
    if (server != nullptr) server->request_stop();
}

/// Clears g_server on *every* exit path — also when serve() throws and the
/// server unwinds — so a late SIGTERM never dereferences a destroyed server.
/// Declared after the server so it runs first during unwinding.
struct ClearServerOnExit {
    ~ClearServerOnExit() { g_server.store(nullptr, std::memory_order_relaxed); }
};

} // namespace

int main(int argc, char** argv) {
    ServerConfig config;
    bool quiet = false;
    bool metrics = true;
    std::string log_file;
    std::string log_level;

    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = nullptr;
        if (arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--no-metrics") {
            metrics = false;
        } else if (arg == "--socket") {
            if (!(v = need_value(i))) return 2;
            config.socket_path = v;
        } else if (arg == "--threads") {
            if (!(v = need_value(i))) return 2;
            config.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--max-jobs") {
            if (!(v = need_value(i))) return 2;
            config.max_jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            if (config.max_jobs == 0) {
                std::cerr << "--max-jobs must be >= 1\n";
                return 2;
            }
        } else if (arg == "--telemetry-interval") {
            if (!(v = need_value(i))) return 2;
            const unsigned long ms = std::strtoul(v, nullptr, 10);
            if (ms == 0) {
                std::cerr << "--telemetry-interval must be >= 1 ms\n";
                return 2;
            }
            config.telemetry_interval = std::chrono::milliseconds(ms);
        } else if (arg == "--telemetry-out") {
            if (!(v = need_value(i))) return 2;
            config.telemetry_out = v;
        } else if (arg == "--log-file") {
            if (!(v = need_value(i))) return 2;
            log_file = v;
        } else if (arg == "--log-level") {
            if (!(v = need_value(i))) return 2;
            log_level = v;
        } else {
            std::cerr << "unknown option: " << arg << "\n" << kUsage;
            return 2;
        }
    }
    if (config.socket_path.empty()) {
        std::cerr << "--socket PATH is required\n" << kUsage;
        return 2;
    }

    // A daemon is long-lived and shared — collect by default so a `metrics`
    // request is never an empty answer (~1ns per counter hit; batch tools
    // stay opt-in instead).
    obs::set_metrics_enabled(metrics);

    if (!log_level.empty()) {
        if (log_level == "debug") obs::set_log_level(obs::LogLevel::kDebug);
        else if (log_level == "info") obs::set_log_level(obs::LogLevel::kInfo);
        else if (log_level == "warn") obs::set_log_level(obs::LogLevel::kWarn);
        else if (log_level == "error") obs::set_log_level(obs::LogLevel::kError);
        else {
            std::cerr << "--log-level must be debug|info|warn|error\n";
            return 2;
        }
    }
    if (!log_file.empty() && !obs::set_log_file(log_file)) {
        std::cerr << "cannot open --log-file for appending: " << log_file << "\n";
        return 2;
    }
    if (!config.telemetry_out.empty()) {
        // The sampler truncates-on-open inside ServiceServer and would
        // otherwise fail silently; make the parent directory and prove the
        // sink writable up front.
        const auto parent =
            std::filesystem::path(config.telemetry_out).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream probe(config.telemetry_out, std::ios::trunc);
        if (!probe.good()) {
            std::cerr << "cannot open --telemetry-out for writing: "
                      << config.telemetry_out << "\n";
            return 2;
        }
    }

    try {
        ServiceServer server(config);
        g_server.store(&server, std::memory_order_relaxed);
        ClearServerOnExit clear_on_exit;

        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_handler = handle_signal;
        sigaction(SIGTERM, &action, nullptr);
        sigaction(SIGINT, &action, nullptr);

        server.serve(quiet ? nullptr : &std::cerr);
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
