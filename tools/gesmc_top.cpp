/// \file gesmc_top.cpp
/// \brief Live terminal dashboard over a gesmc_serve daemon's telemetry.
///
/// Subscribes to the daemon's `watch` stream (one 'J' telemetry frame per
/// sampler tick, docs/service_protocol.md) and renders the machine's pulse
/// in place: executor occupancy, per-interval rates (switches/s, frames/s),
/// histogram quantiles of the interval's activity, and the analysis-layer
/// gauges (mixing fractions, corpus z-scores).
///
///   gesmc_top --socket /tmp/gesmc.sock
///   gesmc_top --socket /tmp/gesmc.sock --ticks 5 --plain   # scripts / CI
///
/// --plain prints one parseable line per tick instead of redrawing the
/// screen (the smoke test asserts monotone timestamps from it); --ticks N
/// exits 0 after N ticks.  Exit 1 when the stream ends before any tick —
/// a daemon whose sampler never fires is a bug worth a non-zero exit.
#include "service/frame.hpp"
#include "service/json.hpp"
#include "service/socket.hpp"
#include "util/format.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

using namespace gesmc;

namespace {

constexpr const char* kUsage = R"(gesmc_top — live telemetry dashboard for gesmc_serve

Options:
  --socket PATH   gesmc_serve Unix-domain socket (required)
  --ticks N       exit after N telemetry ticks (0 = run until the daemon
                  stops or the connection drops)                      [0]
  --plain         one parseable line per tick instead of a redrawn screen
                  (for scripts; fields: tick, ts_ms, leased, threads,
                  runs, switches_per_s)
  --help          this text

The daemon pushes one frame per sampler tick (--telemetry-interval on
gesmc_serve).  Quit with Ctrl-C.
)";

double number_of(const JsonValue* v) {
    return v != nullptr && v->is_number() ? v->number_value : 0.0;
}

std::uint64_t uint_of(const JsonValue* v) {
    if (v == nullptr || !v->is_number()) return 0;
    return v->has_uint ? v->uint_value : static_cast<std::uint64_t>(v->number_value);
}

/// Sum of the rates whose counter name contains `needle`.
double rate_matching(const JsonValue& rates, const std::string& needle) {
    double sum = 0;
    for (const auto& [name, value] : rates.object_members) {
        if (name.find(needle) != std::string::npos) sum += number_of(&value);
    }
    return sum;
}

void render_screen(const JsonValue& doc) {
    const JsonValue* executor = doc.find("executor");
    const JsonValue* rates = doc.find("rates");
    const JsonValue* gauges = doc.find("gauges");
    const JsonValue* histograms = doc.find("histograms");

    const std::uint64_t threads =
        executor != nullptr ? uint_of(executor->find("threads")) : 0;
    const std::uint64_t leased =
        executor != nullptr ? uint_of(executor->find("leased")) : 0;

    std::ostringstream out;
    out << "\x1b[H\x1b[2J"; // cursor home + clear
    out << "gesmc_top  tick " << uint_of(doc.find("seq")) << "  interval "
        << fmt_seconds(number_of(doc.find("interval_s"))) << "  ts_ms "
        << uint_of(doc.find("ts_ms")) << "\n\n";

    if (executor != nullptr) {
        out << "executor   threads " << threads << "  leased " << leased
            << "  waiters " << uint_of(executor->find("lease_waiters")) << "  runs "
            << uint_of(executor->find("active_runs")) << "  inflight "
            << uint_of(executor->find("inflight_replicates")) << "  pending "
            << uint_of(executor->find("pending_replicates")) << "\n";
        constexpr std::uint64_t kBarWidth = 30;
        const std::uint64_t filled =
            threads > 0 ? std::min(kBarWidth, leased * kBarWidth / threads) : 0;
        out << "occupancy  [" << std::string(filled, '#')
            << std::string(kBarWidth - filled, ' ') << "] "
            << (threads > 0 ? leased * 100 / threads : 0) << "%\n";
    }

    if (rates != nullptr) {
        out << "\nthroughput  switches/s " << fmt_si(rate_matching(*rates, "switches"))
            << "  frames/s " << fmt_si(rate_matching(*rates, "frames"))
            << "  replicates/s "
            << fmt_si(rate_matching(*rates, "replicates.completed")) << "\n";
        std::vector<std::pair<std::string, double>> top;
        for (const auto& [name, value] : rates->object_members) {
            if (number_of(&value) > 0) top.emplace_back(name, number_of(&value));
        }
        std::sort(top.begin(), top.end(),
                  [](const auto& a, const auto& b) { return a.second > b.second; });
        if (top.size() > 10) top.resize(10);
        if (!top.empty()) out << "\nrates (per second)\n";
        for (const auto& [name, value] : top) {
            out << "  " << name << std::string(name.size() < 40 ? 40 - name.size() : 1,
                                               ' ')
                << fmt_si(value) << "\n";
        }
    }

    if (histograms != nullptr && !histograms->object_members.empty()) {
        out << "\nhistograms (this interval)    count    rate      p50      p90      "
               "p99\n";
        for (const auto& [name, h] : histograms->object_members) {
            out << "  " << name
                << std::string(name.size() < 28 ? 28 - name.size() : 1, ' ')
                << fmt_si(static_cast<double>(uint_of(h.find("count")))) << "  "
                << fmt_si(number_of(h.find("rate"))) << "  "
                << fmt_si(number_of(h.find("p50"))) << "  "
                << fmt_si(number_of(h.find("p90"))) << "  "
                << fmt_si(number_of(h.find("p99"))) << "\n";
        }
    }

    if (gauges != nullptr && !gauges->object_members.empty()) {
        // The analysis layer's gauges get their own section: they carry the
        // live mixing verdict (ESS, autocorrelation time, non-independent
        // fraction — milli-scaled, docs/observability.md) of adaptive runs.
        bool any_mixing = false;
        for (const auto& [name, value] : gauges->object_members) {
            if (name.rfind("analysis.", 0) != 0) continue;
            if (!any_mixing) out << "\nmixing (analysis gauges, milli units)\n";
            any_mixing = true;
            out << "  " << name
                << std::string(name.size() < 40 ? 40 - name.size() : 1, ' ')
                << number_of(&value) << "\n";
        }
        bool any_other = false;
        for (const auto& [name, value] : gauges->object_members) {
            if (name.rfind("analysis.", 0) == 0) continue;
            if (!any_other) out << "\ngauges\n";
            any_other = true;
            out << "  " << name
                << std::string(name.size() < 40 ? 40 - name.size() : 1, ' ')
                << number_of(&value) << "\n";
        }
    }

    std::cout << out.str() << std::flush;
}

void render_plain(const JsonValue& doc) {
    const JsonValue* executor = doc.find("executor");
    const JsonValue* rates = doc.find("rates");
    std::cout << "tick " << uint_of(doc.find("seq")) << " ts_ms "
              << uint_of(doc.find("ts_ms")) << " leased "
              << (executor != nullptr ? uint_of(executor->find("leased")) : 0) << "/"
              << (executor != nullptr ? uint_of(executor->find("threads")) : 0)
              << " runs "
              << (executor != nullptr ? uint_of(executor->find("active_runs")) : 0)
              << " switches_per_s "
              << (rates != nullptr ? rate_matching(*rates, "switches") : 0.0) << "\n"
              << std::flush;
}

} // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    std::uint64_t max_ticks = 0;
    bool plain = false;

    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* v = nullptr;
        if (arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--plain") {
            plain = true;
        } else if (arg == "--socket") {
            if (!(v = need_value(i))) return 2;
            socket_path = v;
        } else if (arg == "--ticks") {
            if (!(v = need_value(i))) return 2;
            max_ticks = std::strtoull(v, nullptr, 10);
        } else {
            std::cerr << "unknown option: " << arg << "\n" << kUsage;
            return 2;
        }
    }
    if (socket_path.empty()) {
        std::cerr << "--socket PATH is required\n" << kUsage;
        return 2;
    }

    try {
        const FdHandle fd = connect_unix(socket_path);
        Request request;
        request.kind = RequestKind::kWatch;
        write_all(fd.get(), make_request_line(request));

        FrameReader reader;
        std::uint64_t seen = 0;
        for (;;) {
            const std::optional<Frame> frame = read_frame(fd.get(), reader);
            if (!frame.has_value()) break; // daemon stopped or dropped us
            if (frame->type != FrameType::kJson) continue;
            const JsonValue doc = parse_json(frame->payload);
            const JsonValue* event = doc.find("event");
            if (event == nullptr || !event->is_string() ||
                event->string_value != "telemetry") {
                continue;
            }
            ++seen;
            if (plain) {
                render_plain(doc);
            } else {
                render_screen(doc);
            }
            if (max_ticks > 0 && seen >= max_ticks) break;
        }
        if (seen == 0) {
            std::cerr << "error: the stream ended before any telemetry tick\n";
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
